//! Per-link fault injection and ARQ recovery parameters.
//!
//! The paper's cross-layer claim is that coded wireless links with a
//! *non-zero* residual frame-error rate still yield a viable
//! interconnect. This module gives the DES the vocabulary to test that
//! claim: a [`LinkErrorModel`] assigns every directed link a frame-error
//! probability (uniform, or heterogeneous edge/center classes — boundary
//! antennas see worse channels than center ones), [`FaultConfig`] adds
//! degraded-link injection on top (stuck-bad links and transient burst
//! episodes), and [`ArqConfig`] describes the recovery protocol (bounded
//! retries with timeout + multiplicative backoff, then drop).
//!
//! # Determinism contract
//!
//! Every fault decision is a **pure hash** of `(seed, identifiers)` — the
//! same discipline as [`crate::routing::route_choice`] — so the engine's
//! RNG stream is untouched by the fault layer:
//!
//! * whether link `l` is stuck-bad: hash of `(seed, l)`;
//! * whether link `l` degrades during burst episode `k`: hash of
//!   `(seed, l, k)`;
//! * whether transmission attempt `a` of packet `p` on hop `h` is
//!   corrupted: hash of `(seed, p, h, a)` compared against the link's
//!   error probability.
//!
//! Because no RNG is drawn, a configuration whose probabilities are all
//! zero walks *exactly* the fault-free event sequence: error rate 0 is
//! bit-identical to a run without the fault layer at all (pinned by the
//! `des` module tests). The corruption hash keys off the packet's
//! injection ordinal — stable across the engine's slot recycling — so
//! the arena engine and the naive [`crate::des::reference`] oracle make
//! identical decisions.
//!
//! The retry "timeout event" needs no new event type: a failed attempt
//! schedules the packet's next `Ready` at
//! `finish + timeout · backoff^attempt` in the existing integer-keyed
//! heap, and the per-packet attempt counter in the slab tells the next
//! `Ready` what to do.

use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Salt for the stuck-link selection hash.
const STUCK_SALT: u64 = 0x57C4_BAD0_57C4_BAD0;
/// Salt for the burst-episode selection hash.
const BURST_SALT: u64 = 0xB1A5_7000_B1A5_7001;
/// Salt for the per-attempt corruption hash.
const CORRUPT_SALT: u64 = 0xC0FF_EE00_BAD0_B175;

/// SplitMix64-style finalizer mapping arbitrary identifiers to a unit
/// float in `[0, 1)` — the fault layer's no-RNG decision primitive
/// (same mixing as [`crate::routing::route_choice`]).
fn unit_hash(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(c.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Unit decision for one transmission attempt: compare against the
/// link's error probability to decide corruption. Pure in
/// `(seed, packet, hop, attempt)` — `packet` is the injection ordinal,
/// `hop` the 0-based hop index along the route, `attempt` the per-hop
/// retry count — so the engine and the reference oracle agree bit for
/// bit and the engine's RNG stream stays untouched.
pub fn corrupt_unit(seed: u64, packet: u64, hop: u32, attempt: u32) -> f64 {
    unit_hash(
        seed ^ CORRUPT_SALT,
        packet,
        ((hop as u64) << 32) | attempt as u64,
        0,
    )
}

/// Per-link frame-error probability model.
///
/// The probabilities are *frame*-error probabilities after decoding —
/// the quantity `wi_ldpc::ber`'s curves measure — applied per link
/// traversal (one frame per hop). `wi_system`'s co-simulation layer
/// builds the heterogeneous variant from the link budget and a measured
/// FER curve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum LinkErrorModel {
    /// No link errors (the fault layer is inert).
    #[default]
    Off,
    /// Every link fails each traversal with probability `p`.
    Uniform {
        /// Per-traversal frame-error probability.
        p: f64,
    },
    /// Heterogeneous link classes: links touching a boundary router of
    /// the mesh (edge antennas — longer, obstructed channels) fail with
    /// `edge_p`, interior links with `center_p`.
    EdgeCenter {
        /// Error probability of links touching a boundary router.
        edge_p: f64,
        /// Error probability of interior links.
        center_p: f64,
    },
}

impl LinkErrorModel {
    /// Short display name of the model.
    pub fn name(&self) -> &'static str {
        match self {
            LinkErrorModel::Off => "off",
            LinkErrorModel::Uniform { .. } => "uniform",
            LinkErrorModel::EdgeCenter { .. } => "edge-center",
        }
    }

    /// Validation: all probabilities must lie in `[0, 1]`.
    pub fn problem(&self) -> Option<String> {
        let bad = |p: f64| !(0.0..=1.0).contains(&p);
        match *self {
            LinkErrorModel::Off => None,
            LinkErrorModel::Uniform { p } => {
                bad(p).then(|| format!("link error probability {p} outside [0, 1]"))
            }
            LinkErrorModel::EdgeCenter { edge_p, center_p } => (bad(edge_p) || bad(center_p))
                .then(|| format!("link error probabilities ({edge_p}, {center_p}) outside [0, 1]")),
        }
    }
}

/// True when either endpoint router of `link` sits on the boundary of
/// the topology's grid — the "edge antenna" class of
/// [`LinkErrorModel::EdgeCenter`].
pub fn is_edge_link(topo: &Topology, link: usize) -> bool {
    let l = topo.links()[link];
    is_boundary(topo, l.src) || is_boundary(topo, l.dst)
}

fn is_boundary(topo: &Topology, router: usize) -> bool {
    let [x, y, z] = topo.coord(router);
    let [dx, dy, dz] = topo.dims();
    x == 0 || x + 1 == dx || y == 0 || y + 1 == dy || (dz > 1 && (z == 0 || z + 1 == dz))
}

/// Transient degradation episodes layered on top of the base model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum BurstModel {
    /// No burst episodes.
    #[default]
    Off,
    /// Periodic episodes: during the first `duration` cycles of every
    /// `period`-cycle window, each link independently degrades to error
    /// probability `p` (if above its base) with probability `fraction`
    /// — decided by a pure hash of `(seed, link, episode index)`.
    Periodic {
        /// Episode recurrence period in cycles.
        period: f64,
        /// Degraded span at the start of each period, in cycles.
        duration: f64,
        /// Fraction of links affected per episode.
        fraction: f64,
        /// Error probability while degraded.
        p: f64,
    },
}

/// ARQ recovery parameters: how a corrupted hop is retried.
///
/// A corrupted transmission still occupies its link for the full
/// service time (the receiver only discovers the bad frame after it
/// arrives); the sender then waits `timeout · backoff^attempt` cycles
/// before retransmitting the same hop. After `max_retries` failed
/// attempts the packet is dropped and counted in
/// [`DesResult::dropped`](crate::des::DesResult::dropped).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Retransmissions allowed per hop before the packet is dropped
    /// (0 = drop on the first corruption).
    pub max_retries: u32,
    /// Cycles from the end of a corrupted transmission to its first
    /// retransmission attempt.
    pub timeout: f64,
    /// Multiplicative backoff per successive retry (≥ 1).
    pub backoff: f64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_retries: 4,
            timeout: 20.0,
            backoff: 2.0,
        }
    }
}

/// The complete fault-injection configuration of a DES run.
///
/// The default is fully inert ([`LinkErrorModel::Off`], no stuck links,
/// no bursts) and reproduces the fault-free simulation bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base per-link error model.
    pub model: LinkErrorModel,
    /// Fraction of links stuck-bad for the whole run (selected by a
    /// pure hash of `(seed, link)`).
    pub stuck_fraction: f64,
    /// Error probability of a stuck-bad link (applied when above the
    /// base model's probability).
    pub stuck_p: f64,
    /// Transient burst-episode model.
    pub burst: BurstModel,
    /// Retry / drop protocol.
    pub arq: ArqConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            model: LinkErrorModel::Off,
            stuck_fraction: 0.0,
            stuck_p: 1.0,
            burst: BurstModel::Off,
            arq: ArqConfig::default(),
        }
    }
}

impl FaultConfig {
    /// A fully inert configuration (the default).
    pub fn off() -> Self {
        FaultConfig::default()
    }

    /// Uniform per-hop error probability `p` with the default ARQ.
    pub fn uniform(p: f64) -> Self {
        FaultConfig {
            model: LinkErrorModel::Uniform { p },
            ..FaultConfig::default()
        }
    }

    /// True when any fault source is configured. An *active* config with
    /// all probabilities zero still simulates bit-identically to an
    /// inactive one; this is only the engine's fast-path gate.
    pub fn active(&self) -> bool {
        !matches!(self.model, LinkErrorModel::Off)
            || self.stuck_fraction > 0.0
            || !matches!(self.burst, BurstModel::Off)
    }

    /// Validation (mirrors `TrafficKind::problem` / `RoutingKind::problem`),
    /// returning *every* problem (empty when simulatable) so a bad sweep
    /// spec reports all offending fault fields at once.
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if let Some(p) = self.model.problem() {
            problems.push(p);
        }
        if !(0.0..=1.0).contains(&self.stuck_fraction) {
            problems.push(format!(
                "stuck-link fraction {} outside [0, 1]",
                self.stuck_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.stuck_p) {
            problems.push(format!(
                "stuck-link probability {} outside [0, 1]",
                self.stuck_p
            ));
        }
        if let BurstModel::Periodic {
            period,
            duration,
            fraction,
            p,
        } = self.burst
        {
            if !(period > 0.0 && period.is_finite()) {
                problems.push(format!("burst period {period} must be positive"));
            } else if !(0.0..=period).contains(&duration) {
                problems.push(format!("burst duration {duration} outside [0, period]"));
            }
            if !(0.0..=1.0).contains(&fraction) {
                problems.push(format!("burst fraction {fraction} outside [0, 1]"));
            }
            if !(0.0..=1.0).contains(&p) {
                problems.push(format!("burst probability {p} outside [0, 1]"));
            }
        }
        if !(self.arq.timeout > 0.0 && self.arq.timeout.is_finite()) {
            problems.push(format!("ARQ timeout {} must be positive", self.arq.timeout));
        }
        if !(self.arq.backoff >= 1.0 && self.arq.backoff.is_finite()) {
            problems.push(format!("ARQ backoff {} must be >= 1", self.arq.backoff));
        }
        problems
    }

    /// The first problem from [`problems`](FaultConfig::problems),
    /// `None` when simulatable.
    pub fn problem(&self) -> Option<String> {
        self.problems().into_iter().next()
    }

    /// Time-independent error probability of `link`: the base model's
    /// class probability, escalated to [`stuck_p`](FaultConfig::stuck_p)
    /// when the `(seed, link)` hash selects the link as stuck-bad.
    pub fn static_link_p(&self, topo: &Topology, link: usize, seed: u64) -> f64 {
        let base = match self.model {
            LinkErrorModel::Off => 0.0,
            LinkErrorModel::Uniform { p } => p,
            LinkErrorModel::EdgeCenter { edge_p, center_p } => {
                if is_edge_link(topo, link) {
                    edge_p
                } else {
                    center_p
                }
            }
        };
        if self.stuck_fraction > 0.0
            && unit_hash(seed ^ STUCK_SALT, link as u64, 0, 0) < self.stuck_fraction
        {
            base.max(self.stuck_p)
        } else {
            base
        }
    }

    /// Effective error probability of `link` at simulation time `t`,
    /// given its precomputed [`static_link_p`](FaultConfig::static_link_p):
    /// applies the burst model's episode degradation.
    pub fn link_p_at(&self, static_p: f64, link: usize, t: f64, seed: u64) -> f64 {
        match self.burst {
            BurstModel::Off => static_p,
            BurstModel::Periodic {
                period,
                duration,
                fraction,
                p,
            } => {
                let episode = (t / period).floor();
                let phase = t - episode * period;
                if phase < duration
                    && unit_hash(seed ^ BURST_SALT, link as u64, episode as u64, 0) < fraction
                {
                    static_p.max(p)
                } else {
                    static_p
                }
            }
        }
    }

    /// Retransmission wait after the `attempt`-th failure of a hop
    /// (0-based): `timeout · backoff^attempt`.
    pub fn rto(&self, attempt: u32) -> f64 {
        self.arq.timeout * self.arq.backoff.powi(attempt as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_hash_is_deterministic_and_in_range() {
        for i in 0..200u64 {
            let u = corrupt_unit(0xDE5, i, 3, 1);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, corrupt_unit(0xDE5, i, 3, 1));
        }
        // Different attempts must decorrelate (a retried hop is a fresh coin).
        assert_ne!(corrupt_unit(1, 2, 3, 0), corrupt_unit(1, 2, 3, 1));
        assert_ne!(corrupt_unit(1, 2, 3, 0), corrupt_unit(1, 2, 4, 0));
    }

    #[test]
    fn edge_links_touch_the_boundary() {
        let topo = Topology::mesh2d(4, 4);
        let edges = (0..topo.num_links())
            .filter(|&l| is_edge_link(&topo, l))
            .count();
        // The 4x4 mesh has a 2x2 interior: only links between the four
        // interior routers are center links (4 undirected = 8 directed).
        assert_eq!(topo.num_links() - edges, 8);
    }

    #[test]
    fn mesh3d_has_interior_links() {
        // 4x4x4: interior 2x2x2 block, links among interior routers only.
        let topo = Topology::mesh3d(4, 4, 4);
        let center = (0..topo.num_links())
            .filter(|&l| !is_edge_link(&topo, l))
            .count();
        assert_eq!(center, 24); // 12 undirected interior-cube edges.
    }

    #[test]
    fn static_link_p_applies_classes_and_stuck() {
        let topo = Topology::mesh2d(4, 4);
        let cfg = FaultConfig {
            model: LinkErrorModel::EdgeCenter {
                edge_p: 0.2,
                center_p: 0.01,
            },
            ..FaultConfig::default()
        };
        for l in 0..topo.num_links() {
            let want = if is_edge_link(&topo, l) { 0.2 } else { 0.01 };
            assert_eq!(cfg.static_link_p(&topo, l, 7), want);
        }
        // All links stuck at probability 1.
        let stuck = FaultConfig {
            stuck_fraction: 1.0,
            stuck_p: 1.0,
            ..cfg
        };
        for l in 0..topo.num_links() {
            assert_eq!(stuck.static_link_p(&topo, l, 7), 1.0);
        }
        // A partial fraction selects a seed-dependent strict subset.
        let some = FaultConfig {
            stuck_fraction: 0.25,
            stuck_p: 0.9,
            ..cfg
        };
        let n_stuck = (0..topo.num_links())
            .filter(|&l| some.static_link_p(&topo, l, 7) == 0.9)
            .count();
        assert!(n_stuck > 0 && n_stuck < topo.num_links(), "{n_stuck}");
    }

    #[test]
    fn burst_degrades_only_inside_episodes() {
        let cfg = FaultConfig {
            burst: BurstModel::Periodic {
                period: 100.0,
                duration: 10.0,
                fraction: 1.0,
                p: 0.5,
            },
            ..FaultConfig::default()
        };
        assert_eq!(cfg.link_p_at(0.01, 3, 5.0, 1), 0.5); // inside episode 0
        assert_eq!(cfg.link_p_at(0.01, 3, 50.0, 1), 0.01); // between episodes
        assert_eq!(cfg.link_p_at(0.01, 3, 105.0, 1), 0.5); // episode 1
                                                           // Zero fraction never degrades.
        let none = FaultConfig {
            burst: BurstModel::Periodic {
                period: 100.0,
                duration: 10.0,
                fraction: 0.0,
                p: 0.5,
            },
            ..FaultConfig::default()
        };
        assert_eq!(none.link_p_at(0.01, 3, 5.0, 1), 0.01);
    }

    #[test]
    fn rto_backs_off_multiplicatively() {
        let cfg = FaultConfig::default(); // timeout 20, backoff 2
        assert_eq!(cfg.rto(0), 20.0);
        assert_eq!(cfg.rto(1), 40.0);
        assert_eq!(cfg.rto(3), 160.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(FaultConfig::off().problem().is_none());
        assert!(FaultConfig::uniform(0.3).problem().is_none());
        assert!(FaultConfig::uniform(1.5).problem().is_some());
        let mut cfg = FaultConfig::uniform(0.1);
        cfg.stuck_fraction = -0.1;
        assert!(cfg.problem().is_some());
        cfg.stuck_fraction = 0.0;
        cfg.arq.timeout = 0.0;
        assert!(cfg.problem().is_some());
        cfg.arq.timeout = 10.0;
        cfg.arq.backoff = 0.5;
        assert!(cfg.problem().is_some());
        cfg.arq.backoff = 1.0;
        cfg.burst = BurstModel::Periodic {
            period: 0.0,
            duration: 0.0,
            fraction: 0.5,
            p: 0.5,
        };
        assert!(cfg.problem().is_some());
        cfg.burst = BurstModel::Periodic {
            period: 100.0,
            duration: 200.0,
            fraction: 0.5,
            p: 0.5,
        };
        assert!(cfg.problem().is_some());
        cfg.burst = BurstModel::Periodic {
            period: 100.0,
            duration: 20.0,
            fraction: 0.5,
            p: 0.5,
        };
        assert!(cfg.problem().is_none());
        assert!(cfg.active());
        assert!(!FaultConfig::off().active());
    }
}
