//! Synthetic traffic patterns for the discrete-event simulator.
//!
//! The paper's §IV evaluation (and the analytic model of ref \[14\]) is
//! uniform-random only, but multichip-interconnect studies routinely
//! stress NoCs with a battery of synthetic patterns — hotspot, transpose,
//! bit-reversal, nearest-neighbour — because adversarial spatial locality
//! moves the saturation point far from the uniform prediction. This
//! module provides those generators behind one [`TrafficPattern`] trait.
//!
//! Every generator is **seed-deterministic**: destinations depend only on
//! the source module, the precomputed [`TrafficCtx`], and draws from the
//! caller's seeded RNG, so a simulation with a fixed seed is reproducible
//! regardless of pattern. [`Uniform`] consumes the RNG in exactly the
//! order the pre-refactor simulator did, which is what lets the arena
//! engine stay bit-identical to [`crate::des::reference`] under the
//! default configuration.
//!
//! [`TrafficKind`] is the plain-data (serde) mirror of the pattern
//! structs for use in configuration types; it implements
//! [`TrafficPattern`] by dispatch.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Precomputed per-topology context for destination generation.
///
/// Built once per simulation (never inside the event loop), it holds the
/// flat lookups the patterns need — module↔router maps, a modules-per-
/// router CSR, a router-adjacency CSR and grid coordinates — so `dest()`
/// is allocation-free.
#[derive(Clone, Debug)]
pub struct TrafficCtx {
    dims: [usize; 3],
    module_router: Vec<u32>,
    /// Index of each module within its router's module list.
    module_local: Vec<u32>,
    /// CSR of module ids per router.
    router_module_offsets: Vec<u32>,
    router_modules: Vec<u32>,
    /// CSR of neighbouring router ids per router.
    neighbor_offsets: Vec<u32>,
    neighbor_routers: Vec<u32>,
    router_coords: Vec<[usize; 3]>,
}

impl TrafficCtx {
    /// Builds the context for one topology.
    pub fn new(topo: &Topology) -> Self {
        let r = topo.num_routers();
        let n = topo.num_modules();

        let mut per_router: Vec<Vec<u32>> = vec![Vec::new(); r];
        let mut module_local = vec![0u32; n];
        for (m, local) in module_local.iter_mut().enumerate() {
            let router = topo.router_of(m);
            *local = per_router[router].len() as u32;
            per_router[router].push(m as u32);
        }
        let mut router_module_offsets = Vec::with_capacity(r + 1);
        router_module_offsets.push(0u32);
        let mut router_modules = Vec::with_capacity(n);
        for mods in &per_router {
            router_modules.extend_from_slice(mods);
            router_module_offsets.push(router_modules.len() as u32);
        }

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); r];
        for l in topo.links() {
            adj[l.src].push(l.dst as u32);
        }
        let mut neighbor_offsets = Vec::with_capacity(r + 1);
        neighbor_offsets.push(0u32);
        let mut neighbor_routers = Vec::new();
        for a in &adj {
            neighbor_routers.extend_from_slice(a);
            neighbor_offsets.push(neighbor_routers.len() as u32);
        }

        TrafficCtx {
            dims: topo.dims(),
            module_router: (0..n).map(|m| topo.router_of(m) as u32).collect(),
            module_local,
            router_module_offsets,
            router_modules,
            neighbor_offsets,
            neighbor_routers,
            router_coords: (0..r).map(|i| topo.coord(i)).collect(),
        }
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.module_router.len()
    }

    fn modules_of(&self, router: usize) -> &[u32] {
        let lo = self.router_module_offsets[router] as usize;
        let hi = self.router_module_offsets[router + 1] as usize;
        &self.router_modules[lo..hi]
    }

    fn neighbors_of(&self, router: usize) -> &[u32] {
        let lo = self.neighbor_offsets[router] as usize;
        let hi = self.neighbor_offsets[router + 1] as usize;
        &self.neighbor_routers[lo..hi]
    }
}

/// A destination generator: maps a source module to a destination module,
/// drawing any required randomness from the caller's seeded RNG.
pub trait TrafficPattern {
    /// Short lowercase name (CLI / table labels).
    fn name(&self) -> &'static str;

    /// Picks the destination module for a packet injected at `src`.
    ///
    /// Must return a module in range and different from `src`.
    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize;
}

/// Uniform destination over all modules except the source — drawn with
/// the exact RNG-consumption order of the pre-refactor simulator.
fn uniform_excluding(src: usize, n: usize, rng: &mut StdRng) -> usize {
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    dst
}

/// Uniform-random traffic: every other module is equally likely
/// (the paper's §IV assumption).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Uniform;

impl TrafficPattern for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        uniform_excluding(src, ctx.num_modules(), rng)
    }
}

/// Hotspot traffic: with probability `fraction` the packet targets the
/// hotspot module, otherwise a uniform destination (a shared-memory
/// controller or I/O port in one corner of the stack).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hotspot {
    /// The hotspot module.
    pub node: usize,
    /// Probability that a packet targets the hotspot.
    pub fraction: f64,
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        let n = ctx.num_modules();
        // The biased draw happens unconditionally so the RNG stream does
        // not depend on the source module.
        let u: f64 = rng.gen();
        if u < self.fraction && self.node != src && self.node < n {
            self.node
        } else {
            uniform_excluding(src, n, rng)
        }
    }
}

/// Matrix-transpose traffic: the module at router `(x, y, z)` sends to
/// the router at `(y, x, z)` (coordinates folded into the grid when the
/// mesh is not square), keeping the same local module index. Diagonal
/// sources fall back to a uniform draw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Transpose;

impl TrafficPattern for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        let [nx, ny, _] = ctx.dims;
        let [x, y, z] = ctx.router_coords[ctx.module_router[src] as usize];
        let dst_router = (y % nx) + nx * ((x % ny) + ny * z);
        let mods = ctx.modules_of(dst_router);
        let dst = mods[ctx.module_local[src] as usize % mods.len()] as usize;
        if dst == src {
            uniform_excluding(src, ctx.num_modules(), rng)
        } else {
            dst
        }
    }
}

/// Bit-reversal traffic: module `m` sends to the module whose index is
/// the bit-reversal of `m` in `ceil(log2 N)` bits — the classic
/// adversarial pattern for dimension-order routing. Fixed points and
/// out-of-range reversals fall back to a uniform draw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitReversal;

impl TrafficPattern for BitReversal {
    fn name(&self) -> &'static str {
        "bitrev"
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        let n = ctx.num_modules();
        let bits = n.next_power_of_two().trailing_zeros();
        let rev = if bits == 0 {
            src
        } else {
            ((src as u64).reverse_bits() >> (64 - bits)) as usize
        };
        if rev >= n || rev == src {
            uniform_excluding(src, n, rng)
        } else {
            rev
        }
    }
}

/// Nearest-neighbour traffic: destinations are confined to modules on an
/// adjacent router (picked uniformly), modelling tightly blocked stencil
/// workloads. Isolated routers fall back to a uniform draw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NearestNeighbor;

impl TrafficPattern for NearestNeighbor {
    fn name(&self) -> &'static str {
        "neighbor"
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        let neighbors = ctx.neighbors_of(ctx.module_router[src] as usize);
        if neighbors.is_empty() {
            return uniform_excluding(src, ctx.num_modules(), rng);
        }
        let router = neighbors[rng.gen_range(0..neighbors.len())] as usize;
        let mods = ctx.modules_of(router);
        if mods.len() == 1 {
            mods[0] as usize
        } else {
            mods[rng.gen_range(0..mods.len())] as usize
        }
    }
}

/// Plain-data mirror of the pattern structs, for configuration types and
/// CLI flags. Dispatches [`TrafficPattern`] to the corresponding struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// [`Uniform`].
    #[default]
    Uniform,
    /// [`Hotspot`].
    Hotspot {
        /// The hotspot module.
        node: usize,
        /// Probability that a packet targets the hotspot.
        fraction: f64,
    },
    /// [`Transpose`].
    Transpose,
    /// [`BitReversal`].
    BitReversal,
    /// [`NearestNeighbor`].
    NearestNeighbor,
}

impl TrafficKind {
    /// Parses a CLI spelling: `uniform`, `hotspot` (node 0, fraction 0.1),
    /// `hotspot:<node>:<fraction>`, `transpose`, `bitrev`, `neighbor`.
    pub fn parse(s: &str) -> Option<TrafficKind> {
        match s {
            "uniform" => Some(TrafficKind::Uniform),
            "hotspot" => Some(TrafficKind::Hotspot {
                node: 0,
                fraction: 0.1,
            }),
            "transpose" => Some(TrafficKind::Transpose),
            "bitrev" | "bitreversal" => Some(TrafficKind::BitReversal),
            "neighbor" | "nearestneighbor" => Some(TrafficKind::NearestNeighbor),
            _ => {
                let mut parts = s.split(':');
                if parts.next() != Some("hotspot") {
                    return None;
                }
                let node = parts.next()?.parse().ok()?;
                let fraction = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some(TrafficKind::Hotspot { node, fraction })
            }
        }
    }

    /// A human-readable configuration problem, if any, for a network of
    /// `n_modules` modules (`None` when valid).
    pub fn problem(&self, n_modules: usize) -> Option<String> {
        match *self {
            TrafficKind::Hotspot { node, fraction } => {
                if node >= n_modules {
                    Some(format!(
                        "hotspot node {node} out of range for {n_modules} modules"
                    ))
                } else if !(0.0..=1.0).contains(&fraction) {
                    Some(format!("hotspot fraction {fraction} outside [0, 1]"))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl TrafficPattern for TrafficKind {
    fn name(&self) -> &'static str {
        match *self {
            TrafficKind::Uniform => Uniform.name(),
            TrafficKind::Hotspot { .. } => "hotspot",
            TrafficKind::Transpose => Transpose.name(),
            TrafficKind::BitReversal => BitReversal.name(),
            TrafficKind::NearestNeighbor => NearestNeighbor.name(),
        }
    }

    fn dest(&self, src: usize, ctx: &TrafficCtx, rng: &mut StdRng) -> usize {
        match *self {
            TrafficKind::Uniform => Uniform.dest(src, ctx, rng),
            TrafficKind::Hotspot { node, fraction } => {
                Hotspot { node, fraction }.dest(src, ctx, rng)
            }
            TrafficKind::Transpose => Transpose.dest(src, ctx, rng),
            TrafficKind::BitReversal => BitReversal.dest(src, ctx, rng),
            TrafficKind::NearestNeighbor => NearestNeighbor.dest(src, ctx, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_num::rng::seeded_rng;

    fn ctx(topo: &Topology) -> TrafficCtx {
        TrafficCtx::new(topo)
    }

    fn all_kinds() -> Vec<TrafficKind> {
        vec![
            TrafficKind::Uniform,
            TrafficKind::Hotspot {
                node: 3,
                fraction: 0.3,
            },
            TrafficKind::Transpose,
            TrafficKind::BitReversal,
            TrafficKind::NearestNeighbor,
        ]
    }

    #[test]
    fn destinations_are_in_range_and_never_self() {
        for topo in [
            Topology::mesh2d(4, 4),
            Topology::mesh3d(3, 3, 3),
            Topology::star_mesh(3, 3, 4),
            Topology::mesh2d(5, 3),
        ] {
            let c = ctx(&topo);
            let n = topo.num_modules();
            for kind in all_kinds() {
                let mut rng = seeded_rng(17);
                for src in 0..n {
                    for _ in 0..40 {
                        let d = kind.dest(src, &c, &mut rng);
                        assert!(d < n, "{} produced {d} >= {n}", kind.name());
                        assert_ne!(d, src, "{} produced self-send from {src}", kind.name());
                    }
                }
            }
        }
    }

    #[test]
    fn patterns_are_seed_deterministic() {
        let topo = Topology::mesh3d(3, 3, 3);
        let c = ctx(&topo);
        for kind in all_kinds() {
            let mut a = seeded_rng(5);
            let mut b = seeded_rng(5);
            for src in 0..topo.num_modules() {
                assert_eq!(kind.dest(src, &c, &mut a), kind.dest(src, &c, &mut b));
            }
        }
    }

    #[test]
    fn uniform_matches_reference_rng_consumption() {
        // The engine's bit-equivalence with des::reference hinges on this
        // exact draw order.
        let topo = Topology::mesh2d(4, 4);
        let c = ctx(&topo);
        let n = topo.num_modules();
        let mut a = seeded_rng(11);
        let mut b = seeded_rng(11);
        for src in 0..n {
            let got = Uniform.dest(src, &c, &mut a);
            let mut want = b.gen_range(0..n - 1);
            if want >= src {
                want += 1;
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let topo = Topology::mesh2d(4, 4);
        let c = ctx(&topo);
        let kind = Hotspot {
            node: 5,
            fraction: 0.5,
        };
        let mut rng = seeded_rng(23);
        let draws = 4_000;
        let hits = (0..draws)
            .filter(|i| kind.dest((i * 7) % 16, &c, &mut rng) == 5)
            .count();
        let frac = hits as f64 / draws as f64;
        // ~0.5 plus the uniform leak-through, minus src == node cases.
        assert!((0.45..0.62).contains(&frac), "hotspot fraction {frac}");
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let topo = Topology::mesh2d(4, 4);
        let c = ctx(&topo);
        let mut rng = seeded_rng(3);
        // Module at (1, 2) is router 1 + 4·2 = 9; transpose is (2, 1) = 6.
        assert_eq!(Transpose.dest(9, &c, &mut rng), 6);
        // Diagonal module falls back to uniform (never self).
        let d = Transpose.dest(5, &c, &mut rng);
        assert_ne!(d, 5);
    }

    #[test]
    fn bit_reversal_reverses_indices() {
        let topo = Topology::mesh2d(4, 4); // 16 modules, 4 bits
        let c = ctx(&topo);
        let mut rng = seeded_rng(3);
        // 0b0001 -> 0b1000.
        assert_eq!(BitReversal.dest(1, &c, &mut rng), 8);
        // 0b0011 -> 0b1100.
        assert_eq!(BitReversal.dest(3, &c, &mut rng), 12);
        // Palindromic index falls back to uniform (never self).
        assert_ne!(BitReversal.dest(9, &c, &mut rng), 9);
    }

    #[test]
    fn nearest_neighbor_stays_adjacent() {
        let topo = Topology::mesh3d(3, 3, 3);
        let c = ctx(&topo);
        let mut rng = seeded_rng(29);
        for src in 0..topo.num_modules() {
            for _ in 0..20 {
                let d = NearestNeighbor.dest(src, &c, &mut rng);
                assert_eq!(
                    topo.router_distance(topo.router_of(src), topo.router_of(d)),
                    1
                );
            }
        }
    }

    #[test]
    fn kind_parsing_round_trips() {
        assert_eq!(TrafficKind::parse("uniform"), Some(TrafficKind::Uniform));
        assert_eq!(
            TrafficKind::parse("hotspot:7:0.25"),
            Some(TrafficKind::Hotspot {
                node: 7,
                fraction: 0.25
            })
        );
        assert_eq!(TrafficKind::parse("bitrev"), Some(TrafficKind::BitReversal));
        assert_eq!(
            TrafficKind::parse("neighbor"),
            Some(TrafficKind::NearestNeighbor)
        );
        assert_eq!(
            TrafficKind::parse("transpose"),
            Some(TrafficKind::Transpose)
        );
        assert_eq!(TrafficKind::parse("nope"), None);
        assert_eq!(TrafficKind::parse("hotspot:x:0.2"), None);
    }

    #[test]
    fn kind_validation() {
        assert!(TrafficKind::Uniform.problem(64).is_none());
        assert!(TrafficKind::Hotspot {
            node: 70,
            fraction: 0.1
        }
        .problem(64)
        .is_some());
        assert!(TrafficKind::Hotspot {
            node: 0,
            fraction: 1.5
        }
        .problem(64)
        .is_some());
    }
}
