//! Multi-replication latency-vs-rate sweeps — the DES version of a
//! Fig. 8 curve, with error bars.
//!
//! A sweep runs `replications` independent simulations at every
//! injection rate and reports the mean, the standard error **across
//! replications**, and the saturation knee of the resulting curve. Every
//! replication derives its own seed from the master seed via
//! [`derive_seed`] (stream = flat task index), so the work can be fanned
//! out across scoped threads in any order and at any thread count while
//! staying **bit-identical** to the serial path — the same contract
//! `wi_ldpc::ber::simulate_ber` keeps for Monte-Carlo BER. The
//! fan-out uses `std::thread::scope` directly (no `rayon` in the build
//! environment); each worker owns one reusable [`Engine`], so the only
//! per-task cost beyond simulation is writing one [`DesResult`] slot.
//!
//! The **saturation knee** is the first rate whose point either failed a
//! majority of its replications (event-limit overruns — the DES symptom
//! of an unstable queue) or whose mean latency exceeds `knee_factor`
//! times the latency of the first completed point. Near and above the
//! analytic saturation rate the measured latency grows with the horizon
//! rather than converging, so the factor criterion fires reliably even
//! when short runs still drain within the event budget.

use super::engine::Engine;
use super::{DesConfig, DesResult};
use crate::routing::RoutingKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use wi_num::rng::derive_seed;
use wi_num::stats::Running;

/// Configuration of a latency-vs-rate sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Injection rates to simulate (packets/cycle/module).
    pub rates: Vec<f64>,
    /// Independent replications per rate (seeded via
    /// [`derive_seed`] from `base.seed`).
    pub replications: usize,
    /// Template configuration; `injection_rate` and `seed` are overridden
    /// per task.
    pub base: DesConfig,
    /// Latency multiple (over the first completed point) that declares
    /// the saturation knee.
    pub knee_factor: f64,
}

impl SweepConfig {
    /// A sweep over `rates` with `replications` replications of `base`
    /// per rate and the default knee factor of 4.
    pub fn new(rates: Vec<f64>, replications: usize, base: DesConfig) -> Self {
        SweepConfig {
            rates,
            replications,
            base,
            knee_factor: 4.0,
        }
    }
}

/// Aggregated replications at one injection rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Injection rate (packets/cycle/module).
    pub rate: f64,
    /// Mean of the per-replication mean latencies (completed
    /// replications only; 0 when none completed).
    pub mean_latency: f64,
    /// Standard error across the completed replications' means.
    pub stderr: f64,
    /// Replications that drained within the event budget.
    pub completed: usize,
    /// Replications attempted.
    pub replications: usize,
    /// ARQ retransmissions summed over **all** replications at this rate
    /// (0 with the default inert fault config).
    pub retries: u64,
    /// Measured packets dropped, summed over all replications.
    pub dropped: usize,
}

/// Outcome of a sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// One aggregated point per configured rate, in rate order.
    pub points: Vec<RatePoint>,
    /// First rate at which the network shows saturation symptoms (see
    /// module docs), `None` if the whole sweep stays below the knee.
    pub saturation_knee: Option<f64>,
}

/// Threads used by the auto-parallel entry point: the `WI_TEST_THREADS`
/// environment variable when set to a positive integer (the CI matrix
/// runs the suite at 1 and 4 to exercise the thread-invariance contract
/// end to end), otherwise all available cores.
fn auto_threads() -> usize {
    if let Ok(s) = std::env::var("WI_TEST_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the sweep, fanning replications out over all available cores.
/// Bit-identical to [`sweep_serial`] at the same configuration.
///
/// # Example
///
/// ```
/// use wi_noc::des::{sweep, DesConfig, SweepConfig};
/// use wi_noc::topology::Topology;
///
/// let topo = Topology::mesh3d(2, 2, 2);
/// let base = DesConfig {
///     warmup_packets: 50,
///     measured_packets: 300,
///     ..DesConfig::default()
/// };
/// let result = sweep(&topo, &SweepConfig::new(vec![0.02, 0.05], 2, base));
/// assert_eq!(result.points.len(), 2);
/// for point in &result.points {
///     // Both rates are far below saturation: every replication drains
///     // and reports a positive latency.
///     assert_eq!(point.completed, point.replications);
///     assert!(point.mean_latency > 0.0);
/// }
/// assert_eq!(result.saturation_knee, None);
/// ```
///
/// # Panics
///
/// See [`sweep_with_threads`].
pub fn sweep(topo: &Topology, config: &SweepConfig) -> SweepResult {
    sweep_with_threads(topo, config, auto_threads())
}

/// Serial reference path of [`sweep`] (single thread, no fan-out).
pub fn sweep_serial(topo: &Topology, config: &SweepConfig) -> SweepResult {
    sweep_with_threads(topo, config, 1)
}

/// [`sweep`] with an explicit worker-thread count.
///
/// # Panics
///
/// Panics if `rates` is empty, `replications` is zero, or any rate is
/// not positive.
pub fn sweep_with_threads(topo: &Topology, config: &SweepConfig, threads: usize) -> SweepResult {
    // Route the topology once under the sweep's policy; workers clone the
    // prototype (sharing its route table through an `Arc`) instead of
    // re-walking all router pairs per replication.
    let proto = Engine::with_routing(topo, config.base.routing);
    sweep_engine_with_threads(&proto, config, threads)
}

/// Runs the sweep on clones of a caller-built prototype engine, fanning
/// replications out over all available cores — the entry point for
/// engines around custom route tables ([`Engine::with_table`]): pillar
/// meshes and hybrid wired+wireless boards from [`crate::icdb`], whose
/// tables [`sweep`] could not rebuild from a policy alone.
///
/// # Panics
///
/// See [`sweep_engine_with_threads`].
pub fn sweep_engine(proto: &Engine, config: &SweepConfig) -> SweepResult {
    sweep_engine_with_threads(proto, config, auto_threads())
}

/// [`sweep_engine`] with an explicit worker-thread count. Bit-identical
/// at any thread count, like [`sweep_with_threads`].
///
/// # Panics
///
/// Panics if `rates` is empty, `replications` is zero, any rate is not
/// positive, or `config.base.routing` differs from the prototype's
/// routing policy (a mismatch would silently rebuild the table per
/// worker — or panic outright on topologies the mesh walker cannot
/// route).
pub fn sweep_engine_with_threads(
    proto: &Engine,
    config: &SweepConfig,
    threads: usize,
) -> SweepResult {
    assert!(!config.rates.is_empty(), "sweep needs at least one rate");
    assert!(
        config.replications > 0,
        "sweep needs at least one replication"
    );
    assert!(
        config.rates.iter().all(|&r| r > 0.0),
        "injection rates must be positive"
    );
    assert_eq!(
        proto.routing(),
        config.base.routing,
        "sweep routing policy does not match the prototype engine's table"
    );

    let reps = config.replications;
    let tasks: Vec<DesConfig> = config
        .rates
        .iter()
        .enumerate()
        .flat_map(|(ri, &rate)| {
            (0..reps).map(move |rep| DesConfig {
                injection_rate: rate,
                seed: derive_seed(config.base.seed, (ri * reps + rep) as u64),
                ..config.base
            })
        })
        .collect();

    let mut results: Vec<Option<DesResult>> = vec![None; tasks.len()];
    let threads = threads.clamp(1, tasks.len());
    if threads <= 1 {
        let mut engine = proto.clone();
        for (slot, cfg) in results.iter_mut().zip(&tasks) {
            *slot = Some(engine.run(cfg));
        }
    } else {
        let per_worker = tasks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slots, cfgs) in results.chunks_mut(per_worker).zip(tasks.chunks(per_worker)) {
                scope.spawn(move || {
                    // One engine per worker for the whole sweep.
                    let mut engine = proto.clone();
                    for (slot, cfg) in slots.iter_mut().zip(cfgs) {
                        *slot = Some(engine.run(cfg));
                    }
                });
            }
        });
    }

    // Serial fold in task order — the thread count cannot affect anything
    // from here on.
    let mut points = Vec::with_capacity(config.rates.len());
    for (ri, &rate) in config.rates.iter().enumerate() {
        let mut acc = Running::new();
        let mut completed = 0usize;
        let mut retries = 0u64;
        let mut dropped = 0usize;
        for rep in 0..reps {
            let r = results[ri * reps + rep].expect("every task ran");
            if r.completed {
                acc.push(r.mean_latency);
                completed += 1;
            }
            retries += r.retries;
            dropped += r.dropped;
        }
        points.push(RatePoint {
            rate,
            mean_latency: acc.mean(),
            stderr: acc.stderr(),
            completed,
            replications: reps,
            retries,
            dropped,
        });
    }

    let baseline = points
        .iter()
        .find(|p| p.completed > 0)
        .map(|p| p.mean_latency);
    let saturation_knee = points
        .iter()
        .find(|p| {
            2 * p.completed < reps
                || baseline
                    .is_some_and(|b| p.completed > 0 && p.mean_latency > config.knee_factor * b)
        })
        .map(|p| p.rate);

    SweepResult {
        points,
        saturation_knee,
    }
}

/// Runs [`sweep`] once per routing policy (`config.base.routing` is
/// overridden), returning the results in policy order — the building
/// block of the policy × traffic saturation-knee matrix the `fig8a`
/// bin prints under `--routing all`.
///
/// # Panics
///
/// See [`sweep_with_threads`]; additionally panics if `policies` is
/// empty.
pub fn sweep_policies(
    topo: &Topology,
    config: &SweepConfig,
    policies: &[RoutingKind],
) -> Vec<(RoutingKind, SweepResult)> {
    assert!(!policies.is_empty(), "sweep needs at least one policy");
    policies
        .iter()
        .map(|&routing| {
            let cfg = SweepConfig {
                base: DesConfig {
                    routing,
                    ..config.base
                },
                ..config.clone()
            };
            (routing, sweep(topo, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::traffic::TrafficKind;

    fn quick_base(seed: u64) -> DesConfig {
        DesConfig {
            warmup_packets: 300,
            measured_packets: 3_000,
            max_events: 400_000,
            seed,
            ..DesConfig::default()
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        let topo = Topology::mesh2d(4, 4);
        let cfg = SweepConfig::new(vec![0.05, 0.2, 0.5, 0.9], 3, quick_base(0x5EED));
        let serial = sweep_serial(&topo, &cfg);
        for threads in [2, 3, 8, 64] {
            let par = sweep_with_threads(&topo, &cfg, threads);
            assert_eq!(serial, par, "thread count {threads} changed the sweep");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_under_randomized_routing() {
        // The per-packet route-choice hash must keep sweeps bit-identical
        // at any thread count for the multi-route policies too.
        let topo = Topology::mesh3d(3, 3, 3);
        for routing in [RoutingKind::O1Turn, RoutingKind::valiant()] {
            let cfg = SweepConfig::new(
                vec![0.05, 0.2, 0.45],
                3,
                DesConfig {
                    routing,
                    ..quick_base(0xB17)
                },
            );
            let serial = sweep_with_threads(&topo, &cfg, 1);
            for threads in [4, 64] {
                let par = sweep_with_threads(&topo, &cfg, threads);
                assert_eq!(
                    serial,
                    par,
                    "{} diverged at {threads} threads",
                    routing.name()
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_under_adaptive_routing() {
        // Adaptive decisions are pure functions of each replication's own
        // queue state, so sweeps must stay bit-identical at any thread
        // count under the congestion-aware policy + VCs too (1/8/64
        // spans serial, partial and over-subscribed fan-out).
        let topo = Topology::mesh3d(3, 3, 3);
        let cfg = SweepConfig::new(
            vec![0.05, 0.2, 0.45],
            3,
            DesConfig {
                routing: RoutingKind::Adaptive,
                traffic: TrafficKind::Transpose,
                ..quick_base(0xADA)
            },
        );
        let serial = sweep_with_threads(&topo, &cfg, 1);
        for threads in [8, 64] {
            let par = sweep_with_threads(&topo, &cfg, threads);
            assert_eq!(serial, par, "adaptive diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_under_faults() {
        // Fault injection and ARQ accounting must stay thread-count
        // invariant: retries/drops are summed in the serial fold.
        use crate::des::fault::{ArqConfig, FaultConfig};
        let topo = Topology::mesh2d(4, 4);
        let cfg = SweepConfig::new(
            vec![0.05, 0.2, 0.45],
            3,
            DesConfig {
                fault: FaultConfig {
                    stuck_fraction: 0.1,
                    stuck_p: 0.4,
                    arq: ArqConfig {
                        max_retries: 2,
                        timeout: 5.0,
                        backoff: 2.0,
                    },
                    ..FaultConfig::uniform(0.05)
                },
                ..quick_base(0xFA17)
            },
        );
        let serial = sweep_serial(&topo, &cfg);
        assert!(
            serial.points.iter().all(|p| p.retries > 0),
            "faulty sweep must record retries"
        );
        for threads in [2, 8, 64] {
            let par = sweep_with_threads(&topo, &cfg, threads);
            assert_eq!(serial, par, "thread count {threads} changed faulty sweep");
        }
    }

    #[test]
    fn sweep_engine_matches_sweep_bit_for_bit() {
        // The prototype-engine entry point is the same sweep, so a
        // prototype built from the topology must reproduce `sweep`
        // exactly — including around a prebuilt table (the icdb /
        // hybrid-board path).
        use crate::routing::RouteTable;
        use std::sync::Arc;
        let topo = Topology::mesh3d(3, 3, 2);
        let cfg = SweepConfig::new(
            vec![0.05, 0.3],
            3,
            DesConfig {
                routing: RoutingKind::O1Turn,
                ..quick_base(0x1CDB)
            },
        );
        let want = sweep(&topo, &cfg);
        let proto = Engine::with_routing(&topo, RoutingKind::O1Turn);
        assert_eq!(sweep_engine(&proto, &cfg), want);
        let table = Arc::new(RouteTable::with_policy(&topo, RoutingKind::O1Turn));
        let tabled = Engine::with_table(&topo, table);
        assert_eq!(sweep_engine_with_threads(&tabled, &cfg, 4), want);
    }

    #[test]
    #[should_panic(expected = "does not match the prototype")]
    fn sweep_engine_rejects_policy_mismatch() {
        let topo = Topology::mesh2d(3, 3);
        let proto = Engine::with_routing(&topo, RoutingKind::O1Turn);
        sweep_engine(&proto, &SweepConfig::new(vec![0.1], 1, quick_base(1)));
    }

    #[test]
    fn sweep_policies_covers_each_policy() {
        let topo = Topology::mesh2d(4, 4);
        let cfg = SweepConfig::new(vec![0.1, 0.3], 2, quick_base(0x90C));
        let policies = [
            RoutingKind::DimensionOrder,
            RoutingKind::O1Turn,
            RoutingKind::Valiant { choices: 4 },
        ];
        let results = sweep_policies(&topo, &cfg, &policies);
        assert_eq!(results.len(), 3);
        for ((kind, result), want) in results.iter().zip(policies) {
            assert_eq!(*kind, want);
            assert_eq!(result.points.len(), 2);
            // Each per-policy sweep must equal a direct sweep at that policy.
            let direct = sweep(
                &topo,
                &SweepConfig {
                    base: DesConfig {
                        routing: want,
                        ..cfg.base
                    },
                    ..cfg.clone()
                },
            );
            assert_eq!(*result, direct, "{}", want.name());
        }
    }

    #[test]
    fn latency_rises_and_knee_appears_past_saturation() {
        // 4×4 mesh saturates around 0.78 (analytic); the sweep's knee must
        // land above the comfortable rates and at or below overload.
        let topo = Topology::mesh2d(4, 4);
        let cfg = SweepConfig::new(vec![0.1, 0.3, 0.5, 1.2, 1.6], 2, quick_base(7));
        let r = sweep(&topo, &cfg);
        assert!(r.points[0].mean_latency < r.points[2].mean_latency);
        assert!(r.points.iter().all(|p| p.replications == 2));
        let knee = r.saturation_knee.expect("overloaded rates must knee");
        assert!(knee > 0.5 && knee <= 1.2, "knee {knee}");
    }

    #[test]
    fn replications_give_nonzero_spread() {
        let topo = Topology::mesh2d(4, 4);
        let cfg = SweepConfig::new(vec![0.3], 4, quick_base(21));
        let r = sweep(&topo, &cfg);
        let p = r.points[0];
        assert_eq!(p.completed, 4);
        assert!(p.stderr > 0.0, "independent replications must differ");
        assert!(p.mean_latency > 0.0);
    }

    #[test]
    fn hotspot_traffic_knees_before_uniform() {
        // 30 % of packets target module 0, so its ejection port saturates
        // near service_rate/0.3 — far below the uniform knee.
        let topo = Topology::mesh2d(4, 4);
        let uniform = SweepConfig::new(vec![0.2, 0.4, 0.6, 0.8], 2, quick_base(9));
        let hotspot = SweepConfig {
            base: DesConfig {
                traffic: TrafficKind::Hotspot {
                    node: 0,
                    fraction: 0.3,
                },
                ..quick_base(9)
            },
            ..uniform.clone()
        };
        let ku = sweep(&topo, &uniform).saturation_knee;
        let kh = sweep(&topo, &hotspot)
            .saturation_knee
            .expect("hotspot must saturate in range");
        assert!(
            ku.is_none_or(|u| kh < u),
            "hotspot knee {kh:?} vs uniform {ku:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_rates_panic() {
        sweep(
            &Topology::mesh2d(2, 2),
            &SweepConfig::new(vec![], 2, quick_base(1)),
        );
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panic() {
        sweep(
            &Topology::mesh2d(2, 2),
            &SweepConfig::new(vec![0.1], 0, quick_base(1)),
        );
    }
}
