//! Arena-based discrete-event engine — the allocation-free hot path.
//!
//! Same simulated system as [`crate::des::reference`] (Poisson injection,
//! deterministic dimension-order routes, one FIFO server per directed
//! link plus one per ejection port, fixed pipeline delay per traversed
//! router), re-architected the way PR 1's `DecoderWorkspace` re-
//! architected the decoder:
//!
//! * **No per-packet route allocation.** Routes come from a prebuilt
//!   [`RouteTable`] in flat CSR form; a lookup is two array reads instead
//!   of the two `Vec` allocations plus per-hop `HashMap` probes of
//!   [`crate::routing::route`].
//! * **No per-event allocation.** An event is packed *inside* its
//!   16-byte heap entry (tag bit + module/packet index in the low bits),
//!   so the unbounded side `Vec<Event>` of the reference simulator
//!   disappears entirely.
//! * **Arena-recycled packets.** Packet state lives in a slab of `Copy`
//!   slots; ejection returns the slot to a free list, so the live set —
//!   not the total injected count — bounds memory.
//! * **Integer heap keys.** Each heap entry is one `u128` priority whose
//!   high word is the IEEE-754 bit pattern of the (always non-negative)
//!   event time — an order-preserving integer image of the `f64` — with
//!   the push sequence number below it as the tie-break. One integer
//!   comparison reproduces the reference heap's `(total_cmp, seq)` order
//!   exactly, and the pop of almost every event fuses with the push of
//!   its successor into a single replace-top sift.
//!
//! An [`Engine`] is reusable: [`Engine::run`] resets the arenas without
//! releasing their capacity, so replication sweeps
//! ([`mod@crate::des::sweep`]) pay the route-table build once per worker and
//! allocate nothing per replication in the steady state.
//!
//! For the default uniform/exponential configuration the engine consumes
//! the RNG in exactly the reference order and is therefore **bit-
//! identical** to [`crate::des::reference::simulate`] — the `des` module
//! tests pin this. Non-uniform patterns from [`crate::des::traffic`]
//! plug in through the same loop.

use super::fault::corrupt_unit;
use super::traffic::{TrafficCtx, TrafficPattern};
use super::{DesConfig, DesResult, ServiceDistribution};
use crate::routing::{adaptive_network, route_choice, RouteTable, RoutingKind};
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;
use wi_num::rng::seeded_rng;
use wi_num::stats::Running;

/// Tag bit distinguishing `Ready` events from `Inject` events in the
/// packed event word.
const READY_TAG: u32 = 1 << 31;

/// One pending event, packed into a single 16-byte integer priority:
/// time key (bits 127..64), push sequence number (63..32 — the tie-break
/// preserving reference event order) and event payload (31..0: tag bit
/// plus module or packet index).
///
/// Event times are sums of non-negative terms, so the IEEE-754 bit
/// pattern of the `f64` time is an order-preserving integer key, and the
/// whole entry compares with one `u128` comparison. The payload sits
/// below the sequence number, which is unique, so it can never influence
/// the order.
///
/// `Ord` is **inverted** (smaller priority compares `Greater`) so that
/// [`std::collections::BinaryHeap`] — a max-heap — pops the earliest
/// event first. The std heap is used deliberately: its hole-based sift
/// loops are internally unchecked, which safe hand-rolled sifting cannot
/// match, and `PeekMut` gives the pop-and-push fusion ("replace top")
/// that almost every DES event wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapEntry {
    pri: u128,
}

impl HeapEntry {
    #[inline]
    fn new(t: f64, seq: u32, ev: u32) -> Self {
        // `t + 0.0` normalizes a (vanishingly rare, but possible via
        // `-mean * 0.0.ln()`-style corner draws) negative zero to +0.0,
        // whose bit pattern would otherwise order *last* instead of
        // first. For every other non-negative value the addition is the
        // identity, keeping `to_bits` an order-preserving integer key.
        HeapEntry {
            pri: (((t + 0.0).to_bits()) as u128) << 64 | (seq as u128) << 32 | ev as u128,
        }
    }

    #[inline]
    fn time(&self) -> f64 {
        f64::from_bits((self.pri >> 64) as u64)
    }

    #[inline]
    fn ev(&self) -> u32 {
        self.pri as u32
    }

    #[inline]
    fn with_seq(self, seq: u32) -> Self {
        HeapEntry {
            pri: self.pri & !(0xFFFF_FFFFu128 << 32) | (seq as u128) << 32,
        }
    }
}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.pri.cmp(&self.pri)
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of [`HeapEntry`]s over the inverted `Ord` above.
#[derive(Clone, Debug, Default)]
struct EventHeap {
    entries: std::collections::BinaryHeap<HeapEntry>,
}

impl EventHeap {
    fn clear(&mut self) {
        self.entries.clear();
    }

    #[inline]
    fn push(&mut self, e: HeapEntry) {
        self.entries.push(e);
    }

    /// The earliest entry, if any.
    #[inline]
    fn peek(&self) -> Option<HeapEntry> {
        self.entries.peek().copied()
    }

    /// Replaces the earliest entry with `e` — one sift-down instead of
    /// the pop-and-push pair that almost every DES event would otherwise
    /// pay.
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty.
    #[inline]
    fn replace_top(&mut self, e: HeapEntry) {
        let mut top = self.entries.peek_mut().expect("replace_top on empty heap");
        *top = e;
        // The entry sifts into place when the `PeekMut` guard drops.
    }

    /// Removes the earliest entry.
    #[inline]
    fn pop_top(&mut self) {
        self.entries.pop();
    }

    /// Removes and returns the earliest entry (test helper).
    #[cfg(test)]
    fn pop(&mut self) -> Option<HeapEntry> {
        self.entries.pop()
    }

    /// Compacts the 32-bit sequence numbers to `1..=len` preserving the
    /// total entry order, and returns the next free sequence number.
    ///
    /// Called (cold) when the push counter approaches `u32::MAX`, i.e.
    /// every ~4 billion events; an ascending-sorted array is a valid heap
    /// under the inverted `Ord`, so the rebuilt entries can be stored
    /// back directly.
    #[cold]
    fn renumber(&mut self) -> u32 {
        let mut entries = std::mem::take(&mut self.entries).into_vec();
        entries.sort_unstable_by_key(|e| e.pri);
        for (i, e) in entries.iter_mut().enumerate() {
            *e = e.with_seq(i as u32 + 1);
        }
        let next = entries.len() as u32 + 1;
        self.entries = std::collections::BinaryHeap::from(entries);
        next
    }
}

/// Per-packet state in the arena. Routes are *not* stored here — the
/// slot carries the packet's precomputed range within the shared
/// [`RouteTable`]'s flat link buffer.
#[derive(Clone, Copy, Debug)]
struct PacketSlot {
    t_inject: f64,
    /// Injection ordinal — stable across slot recycling, so the fault
    /// layer's per-packet corruption hash agrees with the reference
    /// oracle (whose packet index *is* the ordinal).
    pkt: u64,
    /// Start of the route in [`RouteTable::flat_links`].
    route_lo: u32,
    /// Hops remaining (counts down to the ejection stage).
    remaining: u32,
    /// Total hops of the route (`hops - remaining` is the current hop
    /// index, the fault hash's stable per-hop key).
    hops: u32,
    /// ARQ retransmissions already spent on the current hop.
    attempt: u32,
    dst: u32,
    /// Virtual channel, fixed at injection. For adaptive routing this is
    /// the packet's Linder–Harden virtual network
    /// ([`adaptive_network`]); oblivious policies keep VC bookkeeping out
    /// of the hot loop entirely (their allocation rules live in
    /// [`crate::deadlock`]), so the field stays 0.
    vc: u8,
    measured: bool,
}

/// A reusable simulation engine bound to one topology.
///
/// Construction precomputes the route table and traffic context (the
/// only allocations proportional to topology size); [`Engine::run`]
/// recycles every buffer across calls.
///
/// # Example
///
/// ```
/// use wi_noc::des::{DesConfig, Engine};
/// use wi_noc::topology::Topology;
///
/// let topo = Topology::mesh2d(3, 3);
/// let mut engine = Engine::new(&topo);
/// let config = DesConfig {
///     injection_rate: 0.05,
///     warmup_packets: 100,
///     measured_packets: 500,
///     ..DesConfig::default()
/// };
/// let result = engine.run(&config);
/// assert!(result.completed && result.mean_latency > 0.0);
/// // A second run reuses the engine's arenas and is bit-identical.
/// assert_eq!(engine.run(&config), result);
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    /// Kept so a [`Engine::run`] whose config asks for a different
    /// [`RoutingKind`] can rebuild the route table.
    topo: Topology,
    /// Shared behind an [`Arc`]: sweep workers clone the prototype engine,
    /// and the (potentially large — `choices ×` the dimension-order size)
    /// policy table is read-only during a run, so clones share one copy.
    routes: Arc<RouteTable>,
    ctx: TrafficCtx,
    num_links: usize,
    heap: EventHeap,
    packets: Vec<PacketSlot>,
    free: Vec<u32>,
    link_free: Vec<f64>,
    /// Per-(link, VC) earliest-free times — the queue-state the adaptive
    /// policy reads per hop. Sized `num_links × vcs` per run; timing is
    /// still governed by the physical `link_free` server (VCs share the
    /// wire), so this is visibility + tie-break state, not extra servers.
    vc_free: Vec<f64>,
    ej_free: Vec<f64>,
    /// `nbr_link[router·6 + 2·dim + positive]` — the unit-distance mesh
    /// link leaving `router` along `dim` in that direction, `u32::MAX`
    /// when absent. Lets the adaptive hot loop enumerate productive links
    /// with array reads instead of `HashMap` probes. Express links that
    /// skip routers (hybrid radio chains) never enter the table.
    nbr_link: Vec<u32>,
    /// Per-link static error probability, precomputed per run from the
    /// fault config (all zeros when faults are off).
    link_p: Vec<f64>,
    /// Per-link retransmission counts (drives `worst_link_retries`).
    link_retries: Vec<u64>,
}

/// Builds the [`Engine::nbr_link`] neighbor table for a topology.
fn neighbor_links(topo: &Topology) -> Vec<u32> {
    let mut nbr = vec![u32::MAX; topo.num_routers() * 6];
    'links: for (l, link) in topo.links().iter().enumerate() {
        let a = topo.coord(link.src);
        let b = topo.coord(link.dst);
        let mut step: Option<(usize, bool)> = None;
        for dim in 0..3 {
            match a[dim].abs_diff(b[dim]) {
                0 => {}
                1 if step.is_none() => step = Some((dim, a[dim] < b[dim])),
                _ => continue 'links,
            }
        }
        if let Some((dim, positive)) = step {
            nbr[link.src * 6 + 2 * dim + usize::from(positive)] = l as u32;
        }
    }
    nbr
}

impl Engine {
    /// Builds an engine for `topo` with dimension-order routes, routing
    /// all router pairs once.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than two modules or lacks a link
    /// some dimension-order route needs.
    pub fn new(topo: &Topology) -> Self {
        Self::with_routing(topo, RoutingKind::DimensionOrder)
    }

    /// Builds an engine for `topo` with the route table of `routing`
    /// prematerialized (a [`Engine::run`] whose config asks for another
    /// policy still works — it rebuilds the table first).
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than two modules, the policy is
    /// invalid, or the topology lacks a link some route needs.
    pub fn with_routing(topo: &Topology, routing: RoutingKind) -> Self {
        assert!(topo.num_modules() >= 2, "need at least two modules");
        Engine {
            topo: topo.clone(),
            routes: Arc::new(RouteTable::with_policy(topo, routing)),
            ctx: TrafficCtx::new(topo),
            num_links: topo.num_links(),
            heap: EventHeap::default(),
            packets: Vec::new(),
            free: Vec::new(),
            link_free: vec![0.0; topo.num_links()],
            vc_free: Vec::new(),
            ej_free: vec![0.0; topo.num_modules()],
            nbr_link: neighbor_links(topo),
            link_p: vec![0.0; topo.num_links()],
            link_retries: vec![0; topo.num_links()],
        }
    }

    /// Builds an engine around a prebuilt route table — the entry point
    /// for database-expanded grids ([`crate::icdb`]) and irregular
    /// topologies whose tables come from
    /// [`RouteTable::from_routes`] rather than the mesh policy walker.
    ///
    /// [`Engine::run`] keeps the given table as long as
    /// `config.routing == table.kind()`; a config asking for a different
    /// policy falls back to rebuilding via the mesh walker, which panics
    /// on topologies (pillar meshes, hybrid boards) the walker cannot
    /// route — so pass configs whose routing matches the table.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than two modules or the table
    /// was built for a different module count.
    pub fn with_table(topo: &Topology, routes: Arc<RouteTable>) -> Self {
        assert!(topo.num_modules() >= 2, "need at least two modules");
        assert_eq!(
            routes.num_modules(),
            topo.num_modules(),
            "route table module count does not match the topology"
        );
        Engine {
            topo: topo.clone(),
            routes,
            ctx: TrafficCtx::new(topo),
            num_links: topo.num_links(),
            heap: EventHeap::default(),
            packets: Vec::new(),
            free: Vec::new(),
            link_free: vec![0.0; topo.num_links()],
            vc_free: Vec::new(),
            ej_free: vec![0.0; topo.num_modules()],
            nbr_link: neighbor_links(topo),
            link_p: vec![0.0; topo.num_links()],
            link_retries: vec![0; topo.num_links()],
        }
    }

    /// Routing policy of the engine's current route table.
    pub fn routing(&self) -> RoutingKind {
        self.routes.kind()
    }

    /// Runs one simulation, reusing the engine's arenas.
    ///
    /// Changing `config.routing` between runs rebuilds the route table
    /// (the one non-recycled cost); runs sharing a policy — every
    /// replication of a sweep — pay it once.
    ///
    /// # Panics
    ///
    /// Panics if the injection rate is not positive or the traffic
    /// pattern / routing policy is invalid for this topology.
    pub fn run(&mut self, config: &DesConfig) -> DesResult {
        assert!(
            config.injection_rate > 0.0,
            "injection rate must be positive"
        );
        let n = self.ctx.num_modules();
        assert!(n >= 2, "need at least two modules");
        if let Some(problem) = config.traffic.problem(n) {
            panic!("invalid traffic pattern: {problem}");
        }
        if let Some(problem) = config.fault.problem() {
            panic!("invalid fault config: {problem}");
        }
        if let Some(problem) = config.routing.vc_problem(config.vcs) {
            panic!("invalid vc config: {problem}");
        }
        if self.routes.kind() != config.routing {
            self.routes = Arc::new(RouteTable::with_policy(&self.topo, config.routing));
        }

        let Engine {
            topo,
            routes,
            ctx,
            num_links,
            heap,
            packets,
            free,
            link_free,
            vc_free,
            ej_free,
            nbr_link,
            link_p,
            link_retries,
        } = self;
        let routes: &RouteTable = routes;
        let route_choices = routes.num_choices();
        let adaptive = config.routing == RoutingKind::Adaptive;
        let vcs = if config.vcs == 0 {
            config.routing.safe_vcs()
        } else {
            config.vcs
        };

        heap.clear();
        packets.clear();
        free.clear();
        link_free.clear();
        link_free.resize(*num_links, 0.0);
        // Per-(link, VC) visibility only feeds the adaptive choice, so
        // oblivious runs skip the array entirely — the pre-VC hot loop,
        // bit for bit *and* byte for byte.
        vc_free.clear();
        if adaptive {
            vc_free.resize(*num_links * vcs, 0.0);
        }
        ej_free.clear();
        ej_free.resize(n, 0.0);
        link_retries.clear();
        link_retries.resize(*num_links, 0);
        // Fault decisions are pure hashes — none of this touches `rng`,
        // so an all-zero-probability config replays the fault-free RNG
        // stream exactly.
        let faults = config.fault.active();
        link_p.clear();
        link_p.resize(*num_links, 0.0);
        if faults {
            for (l, p) in link_p.iter_mut().enumerate() {
                *p = config.fault.static_link_p(topo, l, config.seed);
            }
        }

        let mut rng = seeded_rng(config.seed);
        // Sequence numbers are assigned in the reference simulator's push
        // order; whether an entry then enters via `push` or `replace_top`
        // cannot matter, because the heap's (key, seq) order is total.
        let mut seq = 0u32;
        let entry = |seq: &mut u32, t: f64, ev: u32| {
            *seq += 1;
            HeapEntry::new(t, *seq, ev)
        };

        let mut injected = 0usize;
        let total_tracked = config.warmup_packets + config.measured_packets;
        let mut delivered_measured = 0usize;
        let mut dropped_measured = 0usize;
        let mut retries_total = 0u64;
        let mut stats = Running::new();
        let mut event_count = 0u64;

        let inject_mean = 1.0 / config.injection_rate;
        let exp_sample = |rng: &mut StdRng, mean: f64| -> f64 {
            let u: f64 = 1.0 - rng.gen::<f64>();
            -mean * u.ln()
        };

        // Seed one injection per module.
        for m in 0..n {
            let t = exp_sample(&mut rng, inject_mean);
            let e = entry(&mut seq, t, m as u32);
            heap.push(e);
        }

        while let Some(top) = heap.peek() {
            event_count += 1;
            if event_count > config.max_events {
                return DesResult {
                    mean_latency: stats.mean(),
                    stderr: stats.stderr(),
                    delivered: delivered_measured,
                    dropped: dropped_measured,
                    retries: retries_total,
                    worst_link_retries: link_retries.iter().copied().max().unwrap_or(0),
                    completed: false,
                };
            }
            if seq >= u32::MAX - 4 {
                seq = heap.renumber();
            }
            let now = top.time();
            let ev = top.ev();
            if ev & READY_TAG == 0 {
                // Injection at `module`.
                let module = ev as usize;
                let dst = config.traffic.dest(module, ctx, &mut rng);
                let measured = injected >= config.warmup_packets && injected < total_tracked;
                let choice = route_choice(config.seed, injected as u64, module, dst, route_choices);
                // Adaptive packets carry no precomputed route: `route_lo`
                // holds the *current router* instead of a table offset,
                // and the hop budget is the Manhattan distance (adaptive
                // routing is minimal). The VC is the packet's virtual
                // network, fixed here for its whole life.
                let (route_lo, hops, vc) = if adaptive {
                    let src_r = topo.router_of(module);
                    let dst_r = topo.router_of(dst);
                    (
                        src_r as u32,
                        topo.router_distance(src_r, dst_r) as u32,
                        adaptive_network(topo.coord(src_r), topo.coord(dst_r)) as u8,
                    )
                } else {
                    let span = routes.span_choice(module, dst, choice);
                    (span.start as u32, span.len() as u32, 0u8)
                };
                let slot = PacketSlot {
                    t_inject: now,
                    pkt: injected as u64,
                    route_lo,
                    remaining: hops,
                    hops,
                    attempt: 0,
                    dst: dst as u32,
                    vc,
                    measured,
                };
                let pid = match free.pop() {
                    Some(i) => {
                        packets[i as usize] = slot;
                        i
                    }
                    None => {
                        assert!(
                            packets.len() < READY_TAG as usize,
                            "more than 2^31 packets in flight"
                        );
                        packets.push(slot);
                        (packets.len() - 1) as u32
                    }
                };
                injected += 1;
                // Traverse the source router pipeline, then queue.
                let ready = entry(&mut seq, now + config.params.routing_delay, READY_TAG | pid);
                heap.replace_top(ready);
                // Keep offering load until measurement finishes (a
                // measured packet resolves by delivery *or* drop).
                if delivered_measured + dropped_measured < config.measured_packets {
                    let t_next = now + exp_sample(&mut rng, inject_mean);
                    let e = entry(&mut seq, t_next, module as u32);
                    heap.push(e);
                }
            } else {
                // Packet ready for its next stage.
                let pid = (ev & !READY_TAG) as usize;
                let svc = match config.service {
                    ServiceDistribution::Exponential => {
                        exp_sample(&mut rng, config.params.service_time)
                    }
                    ServiceDistribution::Deterministic => config.params.service_time,
                };
                let p = packets[pid];
                if p.remaining > 0 {
                    // Inter-router link stage. A corrupted transmission
                    // still occupies the link for the full service time
                    // (the receiver only detects the bad frame on
                    // arrival).
                    let l = if adaptive {
                        // Congestion-aware choice among the productive
                        // links (one per unfinished dimension): ascending
                        // (server-free, vc-free, link id). A pure
                        // function of queue state — shared verbatim with
                        // the reference oracle, so no RNG and no
                        // bit-divergence. All-idle ties fall to the
                        // lowest link id, i.e. dimension order at low
                        // load; an ARQ retry re-runs the scan and may
                        // steer around the congestion it just hit.
                        let cur = p.route_lo as usize;
                        let here = topo.coord(cur);
                        let target = topo.coord(topo.router_of(p.dst as usize));
                        let mut best = usize::MAX;
                        let mut best_key = (f64::INFINITY, f64::INFINITY, u32::MAX);
                        for dim in 0..3 {
                            if here[dim] == target[dim] {
                                continue;
                            }
                            let positive = here[dim] < target[dim];
                            let cand = nbr_link[cur * 6 + 2 * dim + usize::from(positive)] as usize;
                            let key = (
                                link_free[cand].max(now),
                                vc_free[cand * vcs + p.vc as usize].max(now),
                                cand as u32,
                            );
                            if key < best_key {
                                best_key = key;
                                best = cand;
                            }
                        }
                        best
                    } else {
                        routes.flat_links()[p.route_lo as usize] as usize
                    };
                    let start = now.max(link_free[l]);
                    let finish = start + svc;
                    link_free[l] = finish;
                    if adaptive {
                        // The VC lane the packet occupies frees with the
                        // wire — occupied by corrupted frames too.
                        vc_free[l * vcs + p.vc as usize] = finish;
                    }
                    // Pure-hash corruption decision — consumes no RNG, so
                    // the `faults` short-circuit (and any zero-probability
                    // config) leaves the event stream untouched.
                    let corrupted = faults && {
                        let p_err = config.fault.link_p_at(link_p[l], l, start, config.seed);
                        p_err > 0.0
                            && corrupt_unit(config.seed, p.pkt, p.hops - p.remaining, p.attempt)
                                < p_err
                    };
                    if !corrupted {
                        if adaptive {
                            // Advance to the link's downstream router.
                            packets[pid].route_lo = topo.links()[l].dst as u32;
                        } else {
                            packets[pid].route_lo += 1;
                        }
                        packets[pid].remaining -= 1;
                        packets[pid].attempt = 0;
                        // Next router pipeline, then next queue.
                        let ready = entry(
                            &mut seq,
                            finish + config.params.routing_delay,
                            READY_TAG | pid as u32,
                        );
                        heap.replace_top(ready);
                    } else if p.attempt >= config.fault.arq.max_retries {
                        // ARQ exhausted: drop the packet, recycle the slot.
                        heap.pop_top();
                        free.push(pid as u32);
                        if p.measured {
                            dropped_measured += 1;
                            if delivered_measured + dropped_measured >= config.measured_packets {
                                break;
                            }
                        }
                    } else {
                        // Retransmit the same hop after timeout + backoff;
                        // the retry is a plain `Ready` event in the same
                        // heap, the attempt counter lives in the slab.
                        packets[pid].attempt += 1;
                        retries_total += 1;
                        link_retries[l] += 1;
                        let ready = entry(
                            &mut seq,
                            finish + config.fault.rto(p.attempt),
                            READY_TAG | pid as u32,
                        );
                        heap.replace_top(ready);
                    }
                } else {
                    // Ejection stage; the slot is recycled either way.
                    heap.pop_top();
                    let m = p.dst as usize;
                    let start = now.max(ej_free[m]);
                    let finish = start + svc;
                    ej_free[m] = finish;
                    free.push(pid as u32);
                    if p.measured {
                        stats.push(finish - p.t_inject);
                        delivered_measured += 1;
                        if delivered_measured + dropped_measured >= config.measured_packets {
                            break;
                        }
                    }
                }
            }
        }

        DesResult {
            mean_latency: stats.mean(),
            stderr: stats.stderr(),
            delivered: delivered_measured,
            dropped: dropped_measured,
            retries: retries_total,
            worst_link_retries: link_retries.iter().copied().max().unwrap_or(0),
            completed: delivered_measured + dropped_measured >= config.measured_packets,
        }
    }
}

/// One-shot convenience: builds an [`Engine`] for the config's routing
/// policy and runs it once.
///
/// # Panics
///
/// See [`Engine::with_routing`] and [`Engine::run`].
pub fn simulate(topo: &Topology, config: &DesConfig) -> DesResult {
    Engine::with_routing(topo, config.routing).run(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_heap_orders_by_key_then_seq() {
        let mut h = EventHeap::default();
        for (t, seq, ev) in [
            (5.0f64, 1u32, 10u32),
            (3.0, 2, 11),
            (5.0, 3, 12),
            (1.0, 4, 13),
        ] {
            h.push(HeapEntry::new(t, seq, ev));
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.ev()).collect();
        assert_eq!(order, vec![13, 11, 10, 12]);
    }

    #[test]
    fn renumber_preserves_order() {
        let mut h = EventHeap::default();
        for (t, seq, ev) in [
            (5.0f64, 90u32, 10u32),
            (3.0, 91, 11),
            (5.0, 92, 12),
            (1.0, 93, 13),
        ] {
            h.push(HeapEntry::new(t, seq, ev));
        }
        let next = h.renumber();
        assert_eq!(next, 5);
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.ev()).collect();
        assert_eq!(order, vec![13, 11, 10, 12]);
    }

    #[test]
    fn engine_is_reusable_and_deterministic() {
        let topo = Topology::mesh2d(4, 4);
        let cfg = DesConfig {
            warmup_packets: 200,
            measured_packets: 2_000,
            ..DesConfig::default()
        };
        let mut engine = Engine::new(&topo);
        let a = engine.run(&cfg);
        let b = engine.run(&cfg);
        assert_eq!(a, b, "arena reuse must not leak state between runs");
        assert_eq!(a, simulate(&topo, &cfg));
    }

    #[test]
    fn engine_rebuilds_table_when_policy_changes() {
        // One engine must serve configs with different routing kinds,
        // rebuilding the table on the transition and matching a fresh
        // engine built for that policy directly.
        let topo = Topology::mesh3d(3, 3, 3);
        let base = DesConfig {
            warmup_packets: 200,
            measured_packets: 2_000,
            ..DesConfig::default()
        };
        let mut engine = Engine::new(&topo);
        for routing in [
            RoutingKind::O1Turn,
            RoutingKind::valiant(),
            RoutingKind::DimensionOrder,
        ] {
            let cfg = DesConfig { routing, ..base };
            assert_eq!(
                engine.run(&cfg),
                Engine::with_routing(&topo, routing).run(&cfg),
                "{}",
                routing.name()
            );
        }
    }

    #[test]
    fn with_table_matches_with_routing_bit_for_bit() {
        let topo = Topology::mesh3d(3, 3, 3);
        let cfg = DesConfig {
            routing: RoutingKind::O1Turn,
            warmup_packets: 200,
            measured_packets: 2_000,
            ..DesConfig::default()
        };
        let table = Arc::new(RouteTable::with_policy(&topo, RoutingKind::O1Turn));
        assert_eq!(
            Engine::with_table(&topo, table).run(&cfg),
            Engine::with_routing(&topo, RoutingKind::O1Turn).run(&cfg)
        );
    }

    #[test]
    #[should_panic(expected = "module count")]
    fn with_table_rejects_mismatched_table() {
        let topo = Topology::mesh2d(3, 3);
        let other = Topology::mesh2d(4, 4);
        Engine::with_table(&topo, Arc::new(RouteTable::new(&other)));
    }

    #[test]
    #[should_panic(expected = "invalid routing policy")]
    fn bad_valiant_panics() {
        let topo = Topology::mesh2d(2, 2);
        simulate(
            &topo,
            &DesConfig {
                routing: RoutingKind::Valiant { choices: 0 },
                ..DesConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid traffic pattern")]
    fn bad_hotspot_panics() {
        use crate::des::traffic::TrafficKind;
        let topo = Topology::mesh2d(2, 2);
        simulate(
            &topo,
            &DesConfig {
                traffic: TrafficKind::Hotspot {
                    node: 99,
                    fraction: 0.2,
                },
                ..DesConfig::default()
            },
        );
    }
}
