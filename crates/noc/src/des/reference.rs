//! The original per-event-allocating simulator, retained as the
//! correctness oracle for the arena engine.
//!
//! This is the PR-1 `decoder::reference` pattern applied to the DES: the
//! code below is the pre-refactor simulator, kept unoptimized on purpose.
//! It pushes a fresh `Event` and a fresh `Packet` (with a `route()`-
//! allocated link `Vec`) for everything it schedules, and its event heap
//! is keyed on raw `f64` time — exactly the behaviour
//! [`crate::des::engine`] removes. The `des` module tests assert that the
//! two simulators produce bit-identical [`DesResult`]s for the default
//! uniform/exponential configuration, and the `des_sim` benches measure
//! the speedup against it.
//!
//! Only uniform traffic is implemented here (the pre-refactor simulator
//! knew nothing else); the `traffic` field of [`DesConfig`] is ignored.
//! Routing policies **are** implemented — the oracle picks the same
//! per-packet [`route_choice`] the engine does and then re-materializes
//! the chosen route naively with [`policy_route`], so the `des` module
//! tests can pin the engine's policy tables bit-for-bit.
//!
//! The fault/ARQ path of [`crate::des::fault`] is re-materialized here
//! in the same naive style: per-hop error probabilities are recomputed
//! from the config on every transmission (no precomputed per-link
//! table), retries push fresh heap events, and the corruption decision
//! shares the engine's pure `(seed, packet, hop, attempt)` hash — so
//! the bit-identical contract extends to faulty runs.
//!
//! Adaptive routing is re-materialized naively too: every hop re-derives
//! the productive candidate links through per-hop
//! [`Topology::link_between`] `HashMap` probes (no neighbor table) and
//! applies the same pure (server-free, vc-free, link id) comparison the
//! engine's arena loop uses — congestion-aware decisions never touch the
//! RNG, so the bit-identical contract survives them.

use super::fault::corrupt_unit;
use super::{DesConfig, DesResult, ServiceDistribution};
use crate::routing::{adaptive_network, policy_route, route_choice, RoutingKind};
use crate::topology::Topology;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wi_num::rng::seeded_rng;
use wi_num::stats::Running;

/// Total-ordering wrapper for event timestamps.
#[derive(Clone, Copy, Debug, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A module's next packet injection.
    Inject { module: usize },
    /// A packet is ready to join the queue of its next stage.
    Ready { packet: usize },
}

struct Packet {
    t_inject: f64,
    /// Link ids along the path (empty under adaptive routing, which has
    /// no precomputed path — every hop is re-derived from queue state).
    links: Vec<usize>,
    dst_module: usize,
    next_stage: usize,
    /// Inter-router hops the packet must make (`links.len()` for
    /// precomputed routes, the Manhattan distance under adaptive).
    total_hops: usize,
    /// Current router (meaningful under adaptive routing only).
    cur_router: usize,
    /// Virtual channel: the packet's Linder–Harden virtual network under
    /// adaptive routing, 0 otherwise.
    vc: usize,
    /// ARQ retransmissions already spent on the current hop.
    attempt: u32,
    measured: bool,
}

/// Runs the reference simulation (uniform traffic only).
///
/// # Panics
///
/// Panics if the injection rate is not positive or the topology has fewer
/// than two modules.
pub fn simulate(topo: &Topology, config: &DesConfig) -> DesResult {
    assert!(
        config.injection_rate > 0.0,
        "injection rate must be positive"
    );
    let n = topo.num_modules();
    assert!(n >= 2, "need at least two modules");

    let mut rng = seeded_rng(config.seed);
    let mut heap: BinaryHeap<Reverse<(TimeKey, u64, usize)>> = BinaryHeap::new();
    // Events stored separately so the heap stays Copy-friendly.
    let mut events: Vec<Event> = Vec::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<_>, events: &mut Vec<Event>, t: f64, e: Event| {
        events.push(e);
        let id = events.len() - 1;
        seq += 1;
        heap.push(Reverse((TimeKey(t), seq, id)));
    };

    let adaptive = config.routing == RoutingKind::Adaptive;
    let vcs = if config.vcs == 0 {
        config.routing.safe_vcs()
    } else {
        config.vcs
    };
    let mut link_free = vec![0.0f64; topo.num_links()];
    let mut vc_free = vec![0.0f64; if adaptive { topo.num_links() * vcs } else { 0 }];
    let mut ej_free = vec![0.0f64; n];
    let mut packets: Vec<Packet> = Vec::new();

    let mut injected = 0usize;
    let total_tracked = config.warmup_packets + config.measured_packets;
    let mut delivered_measured = 0usize;
    let mut dropped_measured = 0usize;
    let mut retries_total = 0u64;
    let mut link_retries = vec![0u64; topo.num_links()];
    let mut stats = Running::new();
    let mut event_count = 0u64;

    let exp_sample = |rng: &mut rand::rngs::StdRng, mean: f64| -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -mean * u.ln()
    };

    // Seed one injection per module.
    for m in 0..n {
        let t = exp_sample(&mut rng, 1.0 / config.injection_rate);
        push(&mut heap, &mut events, t, Event::Inject { module: m });
    }

    while let Some(Reverse((TimeKey(now), _, eid))) = heap.pop() {
        event_count += 1;
        if event_count > config.max_events {
            return DesResult {
                mean_latency: stats.mean(),
                stderr: stats.stderr(),
                delivered: delivered_measured,
                dropped: dropped_measured,
                retries: retries_total,
                worst_link_retries: link_retries.iter().copied().max().unwrap_or(0),
                completed: false,
            };
        }
        match events[eid] {
            Event::Inject { module } => {
                // Uniform destination, excluding self.
                let mut dst = rng.gen_range(0..n - 1);
                if dst >= module {
                    dst += 1;
                }
                let choice = route_choice(
                    config.seed,
                    injected as u64,
                    module,
                    dst,
                    config.routing.choices(),
                );
                let measured = injected >= config.warmup_packets && injected < total_tracked;
                let (links, total_hops, cur_router, vc) = if adaptive {
                    let src_r = topo.router_of(module);
                    let dst_r = topo.router_of(dst);
                    (
                        Vec::new(),
                        topo.router_distance(src_r, dst_r),
                        src_r,
                        adaptive_network(topo.coord(src_r), topo.coord(dst_r)),
                    )
                } else {
                    let path = policy_route(topo, config.routing, module, dst, choice);
                    let hops = path.links.len();
                    (path.links, hops, 0, 0)
                };
                packets.push(Packet {
                    t_inject: now,
                    links,
                    dst_module: dst,
                    next_stage: 0,
                    total_hops,
                    cur_router,
                    vc,
                    attempt: 0,
                    measured,
                });
                injected += 1;
                let pid = packets.len() - 1;
                // Traverse the source router pipeline, then queue.
                push(
                    &mut heap,
                    &mut events,
                    now + config.params.routing_delay,
                    Event::Ready { packet: pid },
                );
                // Keep offering load until measurement finishes.
                if delivered_measured + dropped_measured < config.measured_packets {
                    let t_next = now + exp_sample(&mut rng, 1.0 / config.injection_rate);
                    push(&mut heap, &mut events, t_next, Event::Inject { module });
                }
            }
            Event::Ready { packet } => {
                let svc = match config.service {
                    ServiceDistribution::Exponential => {
                        exp_sample(&mut rng, config.params.service_time)
                    }
                    ServiceDistribution::Deterministic => config.params.service_time,
                };
                let stage = packets[packet].next_stage;
                if stage < packets[packet].total_hops {
                    // Inter-router link stage. A corrupted transmission
                    // still occupies the link for the full service time.
                    let l = if adaptive {
                        // Naive re-derivation of the congestion-aware
                        // choice: probe every productive neighbor through
                        // the topology's link map and apply the same pure
                        // (server-free, vc-free, link id) order the arena
                        // engine computes from its neighbor table.
                        let cur = packets[packet].cur_router;
                        let here = topo.coord(cur);
                        let target = topo.coord(topo.router_of(packets[packet].dst_module));
                        let mut best = usize::MAX;
                        let mut best_key = (f64::INFINITY, f64::INFINITY, u32::MAX);
                        for dim in 0..3 {
                            if here[dim] == target[dim] {
                                continue;
                            }
                            let mut next = here;
                            if here[dim] < target[dim] {
                                next[dim] += 1;
                            } else {
                                next[dim] -= 1;
                            }
                            let cand = topo
                                .link_between(cur, topo.router_at(next))
                                .expect("adaptive routing needs the full mesh neighborhood");
                            let key = (
                                link_free[cand].max(now),
                                vc_free[cand * vcs + packets[packet].vc].max(now),
                                cand as u32,
                            );
                            if key < best_key {
                                best_key = key;
                                best = cand;
                            }
                        }
                        best
                    } else {
                        packets[packet].links[stage]
                    };
                    let start = now.max(link_free[l]);
                    let finish = start + svc;
                    link_free[l] = finish;
                    if adaptive {
                        vc_free[l * vcs + packets[packet].vc] = finish;
                    }
                    // Naive re-derivation of the per-hop error
                    // probability (the engine precomputes the static
                    // part per link); the corruption decision is the
                    // shared pure hash, so no RNG is consumed.
                    let static_p = config.fault.static_link_p(topo, l, config.seed);
                    let p_err = config.fault.link_p_at(static_p, l, start, config.seed);
                    let attempt = packets[packet].attempt;
                    let corrupted = p_err > 0.0
                        && corrupt_unit(config.seed, packet as u64, stage as u32, attempt) < p_err;
                    if !corrupted {
                        if adaptive {
                            packets[packet].cur_router = topo.links()[l].dst;
                        }
                        packets[packet].next_stage += 1;
                        packets[packet].attempt = 0;
                        // Next router pipeline, then next queue.
                        push(
                            &mut heap,
                            &mut events,
                            finish + config.params.routing_delay,
                            Event::Ready { packet },
                        );
                    } else if attempt >= config.fault.arq.max_retries {
                        // ARQ exhausted: the packet is dropped (no
                        // further event is scheduled for it).
                        if packets[packet].measured {
                            dropped_measured += 1;
                            if delivered_measured + dropped_measured >= config.measured_packets {
                                break;
                            }
                        }
                    } else {
                        // Retransmit the same hop after timeout + backoff.
                        packets[packet].attempt += 1;
                        retries_total += 1;
                        link_retries[l] += 1;
                        push(
                            &mut heap,
                            &mut events,
                            finish + config.fault.rto(attempt),
                            Event::Ready { packet },
                        );
                    }
                } else {
                    // Ejection stage.
                    let m = packets[packet].dst_module;
                    let start = now.max(ej_free[m]);
                    let finish = start + svc;
                    ej_free[m] = finish;
                    if packets[packet].measured {
                        stats.push(finish - packets[packet].t_inject);
                        delivered_measured += 1;
                        if delivered_measured + dropped_measured >= config.measured_packets {
                            break;
                        }
                    }
                }
            }
        }
    }

    DesResult {
        mean_latency: stats.mean(),
        stderr: stats.stderr(),
        delivered: delivered_measured,
        dropped: dropped_measured,
        retries: retries_total,
        worst_link_retries: link_retries.iter().copied().max().unwrap_or(0),
        completed: delivered_measured + dropped_measured >= config.measured_packets,
    }
}
