//! 3D Network-in-Chip-Stack (NiCS) substrate — §IV of the DATE'13 paper.
//!
//! The paper argues that stacking chips lets a network-on-chip use the third
//! dimension, and compares a 3D mesh against the classical 2D mesh and the
//! concentrated star-mesh with an analytic queueing model (ref \[14\]):
//! the 3D mesh combines good latency (short wires, high concentration) with
//! the highest saturation throughput, and scales best to 512 modules
//! (Figs. 7–8).
//!
//! * [`topology`] — the four topology families of Fig. 7 as graphs.
//! * [`routing`] — deterministic dimension-order routing, including the
//!   all-pairs [`routing::RouteTable`] in flat CSR form that feeds both
//!   the analytic model and the simulator's hot loop.
//! * [`analytic`] — the queueing-theory latency model (per-link M/M/1
//!   servers over exact routed flows), calibrated once against the paper's
//!   published low-load latencies and saturation points.
//! * [`des`] — an independent discrete-event simulator of the same system,
//!   used to validate the analytic model: an arena-based event
//!   [`des::engine`] (zero allocation in the steady-state loop), the
//!   pinned [`des::reference`] oracle, synthetic [`des::traffic`]
//!   patterns (uniform, hotspot, transpose, bit-reversal,
//!   nearest-neighbour) and parallel multi-replication [`mod@des::sweep`]s
//!   with per-rate error bars and saturation-knee detection.
//! * [`metrics`] — structural topology metrics (the quantitative Fig. 7).
//! * [`icdb`] — the interconnect database: deduplicated tile/link
//!   classes plus expanded grids instantiated by coordinate (the
//!   prjcombine model), scaling topology description and route-class
//!   programs to 10⁴–10⁶ routers in O(1) memory, with a bit-identical
//!   compatibility bridge to [`topology`]/[`routing`] and hybrid
//!   wired+wireless board layouts ([`icdb::HybridBoards`]).
//! * [`irregular`] — partial-TSV (pillar) 3D meshes for the paper's
//!   future-work ablation, built on the database: vertical links only on
//!   pillar routers.
//!
//! A workspace-wide tour of where this crate sits (and which engines are
//! pinned to which oracles) is in `docs/ARCHITECTURE.md` at the
//! repository root; the interconnect-database topology model itself is
//! specified in `docs/TOPOLOGY.md`.
//!
//! # Example
//!
//! ```
//! use wi_noc::topology::Topology;
//! use wi_noc::analytic::{AnalyticModel, RouterParams};
//!
//! let cube = Topology::mesh3d(4, 4, 4);
//! let model = AnalyticModel::new(&cube, RouterParams::default());
//! let latency = model.mean_latency(0.1).expect("below saturation");
//! assert!(latency > 0.0 && latency < 20.0);
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod deadlock;
pub mod des;
pub mod icdb;
pub mod irregular;
pub mod metrics;
pub mod routing;
pub mod topology;

pub use analytic::{AnalyticModel, RouterParams};
pub use deadlock::ChannelDepGraph;
pub use des::traffic::{TrafficKind, TrafficPattern};
pub use des::{
    simulate, sweep, DesConfig, DesResult, Engine, RatePoint, ServiceDistribution, SweepConfig,
    SweepResult,
};
pub use icdb::{ClassRouter, ExpandedGrid, HybridBoards, InterconnectDb};
pub use metrics::{topology_metrics, TopologyMetrics};
pub use routing::{route, Path, RouteTable};
pub use topology::{Topology, TopologyKind};
