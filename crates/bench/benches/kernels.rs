//! Criterion performance benches for the hot computational kernels behind
//! the figure harness: the 4096-point VNA transform, information-rate
//! computation, the NoC analytic model and DES, and BP/window decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wi_channel::geometry::BoardLink;
use wi_channel::rays::TwoBoardScene;
use wi_channel::vna::SyntheticVna;
use wi_ldpc::ber::{ebn0_db_to_sigma, simulate_ber_with_threads, BerSimOptions, BlockBerTarget};
use wi_ldpc::decoder::{awgn_llrs, reference, BpConfig, BpDecoder, CheckRule, DecoderWorkspace};
use wi_ldpc::kernel::{
    min_sum_scalar, min_sum_unrolled8, sum_product_exact, sum_product_table, PhiTable,
};
use wi_ldpc::window::{CoupledCode, WindowDecoder, WindowWorkspace};
use wi_ldpc::{BatchWorkspace, LdpcCode, WindowBatchWorkspace};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::{simulate, DesConfig};
use wi_noc::topology::Topology;
use wi_num::fft::{dft, Direction};
use wi_num::rng::{seeded_rng, Gaussian};
use wi_num::window::WindowKind;
use wi_num::Complex64;
use wi_quantrx::info_rate::{
    sequence_information_rate, snr_db_to_sigma, symbolwise_information_rate, SequenceRateOptions,
};
use wi_quantrx::modulation::AskModulation;
use wi_quantrx::presets;
use wi_quantrx::trellis::ChannelTrellis;

fn bench_fft(c: &mut Criterion) {
    let x: Vec<Complex64> = (0..4096).map(|k| Complex64::cis(k as f64 * 0.01)).collect();
    c.bench_function("fft_4096", |b| {
        b.iter(|| dft(black_box(&x), Direction::Forward))
    });
}

fn bench_vna(c: &mut Criterion) {
    let scene = TwoBoardScene::copper_boards(BoardLink::ahead(0.05, 0.01));
    let channel = scene.trace();
    let vna = SyntheticVna::paper_default();
    c.bench_function("vna_sweep_4096", |b| {
        b.iter(|| vna.measure(black_box(&channel)))
    });
    let resp = vna.measure(&channel);
    c.bench_function("vna_impulse_response", |b| {
        b.iter(|| resp.impulse_response(WindowKind::Hann))
    });
}

fn bench_info_rate(c: &mut Criterion) {
    let modu = AskModulation::four_ask();
    let trellis = ChannelTrellis::new(&modu, &presets::sequence_filter());
    let sigma = snr_db_to_sigma(15.0);
    c.bench_function("symbolwise_rate_exact", |b| {
        b.iter(|| symbolwise_information_rate(black_box(&trellis), sigma))
    });
    let mc = SequenceRateOptions {
        num_symbols: 2_000,
        seed: 1,
    };
    c.bench_function("sequence_rate_2k_symbols", |b| {
        b.iter(|| sequence_information_rate(black_box(&trellis), sigma, mc))
    });
}

fn bench_noc(c: &mut Criterion) {
    let topo = Topology::mesh3d(4, 4, 4);
    c.bench_function("analytic_model_build_64", |b| {
        b.iter(|| AnalyticModel::new(black_box(&topo), RouterParams::default()))
    });
    let model = AnalyticModel::new(&topo, RouterParams::default());
    c.bench_function("analytic_latency_point", |b| {
        b.iter(|| model.mean_latency(black_box(0.3)))
    });
    c.bench_function("des_4x4_2k_packets", |b| {
        b.iter(|| {
            simulate(
                black_box(&Topology::mesh2d(4, 4)),
                &DesConfig {
                    injection_rate: 0.1,
                    warmup_packets: 200,
                    measured_packets: 2_000,
                    ..DesConfig::default()
                },
            )
        })
    });
}

fn bench_ldpc(c: &mut Criterion) {
    let code = LdpcCode::paper_block(100, 1);
    let sigma = ebn0_db_to_sigma(3.0, 0.5);
    let mut rng = seeded_rng(7);
    let mut gauss = Gaussian::new();
    let rx: Vec<f64> = (0..code.len())
        .map(|_| 1.0 + gauss.sample_with(&mut rng, 0.0, sigma))
        .collect();
    let llr = awgn_llrs(&rx, sigma);

    // The flat CSR engine (fresh workspace per call) vs the retained naive
    // reference vs a reused workspace — the speedup the engine exists for.
    let decoder = BpDecoder::new(&code, BpConfig::default());
    c.bench_function("bp_decode_n200", |b| {
        b.iter(|| decoder.decode(black_box(&llr)))
    });
    c.bench_function("bp_decode_naive_n200", |b| {
        b.iter(|| reference::decode(&code, BpConfig::default(), black_box(&llr)))
    });
    let mut ws = DecoderWorkspace::new(&code);
    c.bench_function("bp_decode_workspace_n200", |b| {
        b.iter(|| decoder.decode_in_place(&mut ws, black_box(&llr)))
    });
    let minsum_config = BpConfig {
        check_rule: CheckRule::min_sum(),
        ..BpConfig::default()
    };
    let minsum = BpDecoder::new(&code, minsum_config);
    c.bench_function("bp_decode_minsum_n200", |b| {
        b.iter(|| minsum.decode_in_place(&mut ws, black_box(&llr)))
    });
    c.bench_function("bp_decode_naive_minsum_n200", |b| {
        b.iter(|| reference::decode(&code, minsum_config, black_box(&llr)))
    });
    // The φ-table sum-product rule: sum-product accuracy without the
    // tanh/atanh inner loop. The acceptance bar for the kernel subsystem
    // is ≥3× over bp_decode_workspace_n200 (exact sum-product).
    let sptable_config = BpConfig {
        check_rule: CheckRule::sum_product_table(),
        ..BpConfig::default()
    };
    let sptable = BpDecoder::new(&code, sptable_config);
    c.bench_function("bp_decode_sptable_n200", |b| {
        b.iter(|| sptable.decode_in_place(&mut ws, black_box(&llr)))
    });
    c.bench_function("bp_decode_naive_sptable_n200", |b| {
        b.iter(|| reference::decode(&code, sptable_config, black_box(&llr)))
    });

    // Check-kernel microbenches over the full check range of the n = 200
    // code (all checks degree 8): the unrolled min-sum path vs the scalar
    // two-min tracker, and the φ-table sum-product vs the exact
    // tanh/atanh kernel.
    let offsets = code.check_edge_offsets();
    let n_checks = code.num_checks();
    let v2c: Vec<f64> = (0..code.num_edges())
        .map(|_| gauss.sample_with(&mut rng, 0.0, 4.0))
        .collect();
    let mut c2v = vec![0.0f64; code.num_edges()];
    let mut scratch = vec![0.0f64; code.max_check_degree()];
    let mut fwd = vec![0.0f64; code.max_check_degree() + 1];
    c.bench_function("check_minsum_deg8_scalar", |b| {
        b.iter(|| min_sum_scalar(offsets, 0, n_checks, 0.8, black_box(&v2c), &mut c2v))
    });
    c.bench_function("check_minsum_deg8_unrolled", |b| {
        b.iter(|| min_sum_unrolled8(offsets, 0, n_checks, 0.8, black_box(&v2c), &mut c2v))
    });
    c.bench_function("check_sumproduct_exact_deg8", |b| {
        b.iter(|| {
            sum_product_exact(
                offsets,
                0,
                n_checks,
                black_box(&v2c),
                &mut c2v,
                &mut scratch,
                &mut fwd,
            )
        })
    });
    let phi = PhiTable::new(7);
    c.bench_function("check_sumproduct_table_deg8", |b| {
        b.iter(|| {
            sum_product_table(
                offsets,
                0,
                n_checks,
                &phi,
                black_box(&v2c),
                &mut c2v,
                &mut scratch,
            )
        })
    });

    // Inter-frame batched BP: 4 and 8 frames decoded in lockstep through
    // the lane-array kernels (bit-identical per frame to the scalar
    // decoder). Divide by the lane count for the per-frame cost the BER
    // harness actually pays.
    let frames: Vec<Vec<f64>> = (0..8)
        .map(|lane| {
            let mut rng = seeded_rng(100 + lane);
            let mut gauss = Gaussian::new();
            let rx: Vec<f64> = (0..code.len())
                .map(|_| 1.0 + gauss.sample_with(&mut rng, 0.0, sigma))
                .collect();
            awgn_llrs(&rx, sigma)
        })
        .collect();
    c.bench_function("bp_decode_minsum_8frames_n200", |b| {
        b.iter(|| {
            for llr in &frames {
                minsum.decode_in_place(&mut ws, black_box(llr));
            }
        })
    });
    for lanes in [4usize, 8] {
        let mut bws = BatchWorkspace::new(&code, lanes);
        c.bench_function(&format!("bp_decode_batch{lanes}_n200"), |b| {
            b.iter(|| {
                for (lane, llr) in frames[..lanes].iter().enumerate() {
                    bws.set_lane_llr(lane, black_box(llr));
                }
                minsum.decode_batch(&mut bws);
            })
        });
    }

    let cc = CoupledCode::paper_cc(25, 10, 2);
    let rx_cc: Vec<f64> = (0..cc.code().len())
        .map(|_| 1.0 + gauss.sample_with(&mut rng, 0.0, sigma))
        .collect();
    let llr_cc = awgn_llrs(&rx_cc, sigma);
    let wd = WindowDecoder::new(4, 20);
    c.bench_function("window_decode_n25_l10", |b| {
        b.iter(|| wd.decode(black_box(&cc), black_box(&llr_cc)))
    });
    let mut wws = WindowWorkspace::new(cc.code());
    c.bench_function("window_decode_workspace_n25_l10", |b| {
        b.iter(|| wd.decode_in_place(&mut wws, black_box(&cc), black_box(&llr_cc)))
    });
    // Batched window decoding: 8 frames slide the window in lockstep
    // (fixed iteration schedule — no masking needed; divide by 8 for the
    // per-frame cost). Min-sum is the rule the batch path exists to
    // accelerate, so the scalar/batched pair is measured on it.
    let wd_ms = WindowDecoder::new(4, 20).with_rule(CheckRule::min_sum());
    c.bench_function("window_decode_minsum_n25_l10", |b| {
        b.iter(|| wd_ms.decode_in_place(&mut wws, black_box(&cc), black_box(&llr_cc)))
    });
    let cc_frames: Vec<Vec<f64>> = (0..8)
        .map(|lane| {
            let mut rng = seeded_rng(200 + lane);
            let mut gauss = Gaussian::new();
            let rx: Vec<f64> = (0..cc.code().len())
                .map(|_| 1.0 + gauss.sample_with(&mut rng, 0.0, sigma))
                .collect();
            awgn_llrs(&rx, sigma)
        })
        .collect();
    let mut wbws = WindowBatchWorkspace::new(cc.code(), 8);
    c.bench_function("window_decode_batch8_n25_l10", |b| {
        b.iter(|| {
            for (lane, llr) in cc_frames.iter().enumerate() {
                wbws.set_lane_llr(lane, black_box(llr));
            }
            wd_ms.decode_batch(&mut wbws, &cc);
        })
    });
}

fn bench_ber(c: &mut Criterion) {
    // Serial vs parallel Monte-Carlo BER at a fixed frame budget (the
    // results are bit-identical; only wall clock differs).
    let code = LdpcCode::paper_block(50, 21);
    let opts = BerSimOptions {
        target_errors: u64::MAX,
        max_frames: 24,
        min_frames: 24,
        seed: 0xBE5,
    };
    let target = BlockBerTarget::new(&code, BpConfig::default(), 0.5);
    c.bench_function("ber_bc_n100_24f_serial", |b| {
        b.iter(|| simulate_ber_with_threads(&target, 2.5, black_box(&opts), 1))
    });
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    c.bench_function("ber_bc_n100_24f_parallel", |b| {
        b.iter(|| simulate_ber_with_threads(&target, 2.5, black_box(&opts), threads))
    });

    // The whole-probe payoff of inter-frame batching: one fixed-budget
    // BER evaluation with the scalar (batch-1) target vs the full-width
    // batched default, min-sum (the rule the batch path accelerates).
    // Results are bit-identical; the ratio is the BER-harness speedup.
    let minsum_config = BpConfig {
        check_rule: CheckRule::min_sum(),
        ..BpConfig::default()
    };
    let scalar_target = BlockBerTarget::new(&code, minsum_config, 0.5).with_batch(1);
    c.bench_function("ber_eval_scalar_n100_24f", |b| {
        b.iter(|| simulate_ber_with_threads(&scalar_target, 2.5, black_box(&opts), 1))
    });
    let batched_target = BlockBerTarget::new(&code, minsum_config, 0.5).with_batch(8);
    c.bench_function("ber_eval_batch_vs_scalar", |b| {
        b.iter(|| simulate_ber_with_threads(&batched_target, 2.5, black_box(&opts), 1))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fft, bench_vna, bench_info_rate, bench_noc, bench_ldpc, bench_ber
}
criterion_main!(kernels);
