//! Criterion benches for the discrete-event NoC simulator: the retained
//! per-event-allocating reference vs the arena engine, the arena engine
//! across the routing policies (oblivious and adaptive), and the
//! virtual-channel pricing of the adaptive path.
//!
//! Split out of `kernels.rs` so the CI `bench-quick` job (and a human
//! chasing a DES regression) can run the simulator suite by itself:
//! `cargo bench -p wi-bench --bench des_sim`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wi_noc::des::{reference as des_reference, DesConfig, Engine, FaultConfig};
use wi_noc::icdb::{ClassRouter, ExpandedGrid};
use wi_noc::routing::RoutingKind;
use wi_noc::topology::Topology;

fn bench_des_sim(c: &mut Criterion) {
    // The retained per-event-allocating simulator vs the arena engine on
    // the default uniform/exponential run (the speedup the engine exists
    // for; results are bit-identical, only wall clock differs).
    for (name, topo) in [
        ("4x4", Topology::mesh2d(4, 4)),
        ("8x8", Topology::mesh2d(8, 8)),
    ] {
        let cfg = DesConfig::default();
        c.bench_function(&format!("des_sim_reference_{name}_20k"), |b| {
            b.iter(|| des_reference::simulate(black_box(&topo), black_box(&cfg)))
        });
        let mut engine = Engine::new(&topo);
        c.bench_function(&format!("des_sim_engine_{name}_20k"), |b| {
            b.iter(|| engine.run(black_box(&cfg)))
        });
    }
}

fn bench_des_faulty(c: &mut Criterion) {
    // The fault-injection path: per-hop corruption hashing plus ARQ
    // retransmissions on the 8x8 mesh. The inert config (`p = 0`) prices
    // the `faults` guard itself — it must stay indistinguishable from the
    // fault-free engine run above; the 5% run prices the hash + retry
    // traffic the co-sim exhibit leans on.
    let topo = Topology::mesh2d(8, 8);
    for (name, fault) in [
        ("inert", FaultConfig::uniform(0.0)),
        ("p5", FaultConfig::uniform(0.05)),
    ] {
        let cfg = DesConfig {
            fault,
            ..DesConfig::default()
        };
        let mut engine = Engine::new(&topo);
        c.bench_function(&format!("des_sim_faulty_8x8_{name}_20k"), |b| {
            b.iter(|| engine.run(black_box(&cfg)))
        });
    }
}

fn bench_des_routing(c: &mut Criterion) {
    // The arena engine under each routing policy on the paper's winning
    // 4x4x4 3D mesh — the multi-route tables must not slow the hot loop
    // (selection is one hash; routes stay flat-CSR), though Valiant's
    // longer detour paths do honest extra hops. Adaptive is the one
    // policy with per-hop work (a ≤3-candidate queue-state scan instead
    // of a CSR lookup) — its gap to dor prices that scan.
    let topo = Topology::mesh3d(4, 4, 4);
    for routing in [
        RoutingKind::DimensionOrder,
        RoutingKind::O1Turn,
        RoutingKind::valiant(),
        RoutingKind::rlb(),
        RoutingKind::Adaptive,
    ] {
        let cfg = DesConfig {
            routing,
            ..DesConfig::default()
        };
        let mut engine = Engine::with_routing(&topo, routing);
        c.bench_function(
            &format!("des_sim_engine_4x4x4_{}_20k", routing.name()),
            |b| b.iter(|| engine.run(black_box(&cfg))),
        );
    }
    // Table construction is the per-policy setup cost sweeps pay once.
    c.bench_function("route_table_build_4x4x4_valiant8", |b| {
        b.iter(|| {
            wi_noc::routing::RouteTable::with_policy(black_box(&topo), RoutingKind::valiant())
        })
    });
    // The same table built through the interconnect database's per-class
    // route programs — bit-identical output (pinned by tests), so any gap
    // to the bench above is pure construction overhead.
    c.bench_function("route_class_table_4x4x4_valiant8", |b| {
        b.iter(|| {
            ClassRouter::new(ExpandedGrid::mesh3d(4, 4, 4), RoutingKind::valiant()).to_route_table()
        })
    });
}

fn bench_des_vcs(c: &mut Criterion) {
    // Virtual-channel pricing on the 8x8 2D mesh. `adaptive` is the
    // headline congestion-aware run (auto VCs = its 4 virtual networks);
    // `dor_vc8` pins the inert-VC guarantee — explicit VCs on an
    // oblivious policy must cost nothing, because the engine never
    // allocates or touches `vc_free` off the adaptive path (the run is
    // bit-identical to `des_sim_engine_8x8_20k` above, and this bench
    // keeps it wall-clock-identical too).
    let topo = Topology::mesh2d(8, 8);
    let adaptive = DesConfig {
        routing: RoutingKind::Adaptive,
        ..DesConfig::default()
    };
    let mut engine = Engine::with_routing(&topo, RoutingKind::Adaptive);
    c.bench_function("des_sim_adaptive_8x8_20k", |b| {
        b.iter(|| engine.run(black_box(&adaptive)))
    });
    let dor_vc8 = DesConfig {
        vcs: 8,
        ..DesConfig::default()
    };
    let mut engine = Engine::new(&topo);
    c.bench_function("des_sim_engine_8x8_dor_vc8_20k", |b| {
        b.iter(|| engine.run(black_box(&dor_vc8)))
    });
}

fn bench_icdb(c: &mut Criterion) {
    // The scalable-topology path: building a database-expanded grid (plus
    // its class router) must stay O(1) in the node count — these three
    // benches pin 10^4, 10^5 and the route arithmetic at 10^6 routers.
    c.bench_function("icdb_build_1e4", |b| {
        b.iter(|| {
            let grid = ExpandedGrid::mesh3d(black_box(25), 20, 20);
            ClassRouter::new(grid, RoutingKind::O1Turn).mem_bytes()
        })
    });
    c.bench_function("icdb_build_1e5", |b| {
        b.iter(|| {
            let grid = ExpandedGrid::mesh3d(black_box(50), 50, 40);
            ClassRouter::new(grid, RoutingKind::O1Turn).mem_bytes()
        })
    });
    // Corner-to-corner route materialization on a million-router grid:
    // 297 closed-form link ids, no table in sight.
    let router = ClassRouter::new(
        ExpandedGrid::mesh3d(100, 100, 100),
        RoutingKind::DimensionOrder,
    );
    let corner = 100 * 100 * 100 - 1;
    let mut out = Vec::with_capacity(512);
    c.bench_function("icdb_route_1e6", |b| {
        b.iter(|| {
            out.clear();
            router.route_routers_into(black_box(0), black_box(corner), 0, &mut out);
            out.len()
        })
    });
}

criterion_group! {
    name = des_sim;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_des_sim, bench_des_faulty, bench_des_routing, bench_des_vcs, bench_icdb
}
criterion_main!(des_sim);
