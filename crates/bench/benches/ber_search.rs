//! Criterion benches for the required-Eb/N0 search strategies of
//! `wi_ldpc::ber` — the wall-clock term the `fig10_latency_ebn0` sweep is
//! dominated by. One bench per [`SearchStrategy`] over the same reduced
//! block-code search (φ-table rule, single worker thread so the numbers
//! measure the *strategy's* frame budget, not the host's core count).
//!
//! `ber_search_bisect` is the pre-redesign ladder (the pinned oracle);
//! `ber_search_concurrent` and `ber_search_paired` are the CI-pruned and
//! common-random-numbers strategies the redesign added. The interesting
//! figure is the ratio between them — it tracks the end-to-end speedup
//! recorded in `docs/REPRODUCING.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wi_ldpc::ber::{
    search_required_ebn0_with_threads, BerSimOptions, BlockBerTarget, SearchConfig, SearchStrategy,
};
use wi_ldpc::decoder::{BpConfig, CheckRule};
use wi_ldpc::LdpcCode;

fn bench_search(c: &mut Criterion) {
    let code = LdpcCode::paper_block(50, 0xBC00 + 50);
    let config = BpConfig {
        max_iterations: 50,
        check_rule: CheckRule::sum_product_table(),
    };
    let target = BlockBerTarget::new(&code, config, 0.5);
    // The fig10 --quick budget: BER 1e-2, coarse tolerance.
    let opts = BerSimOptions {
        target_errors: 120,
        max_frames: 60,
        min_frames: 20,
        seed: 0xF10,
    };
    let base = SearchConfig {
        lo_db: 0.5,
        hi_db: 8.0,
        tol_db: 0.25,
        grid_points: 7,
        ..SearchConfig::default()
    };
    for (name, strategy) in [
        ("ber_search_bisect", SearchStrategy::Bisection),
        ("ber_search_concurrent", SearchStrategy::ConcurrentBisection),
        ("ber_search_paired", SearchStrategy::PairedGrid),
    ] {
        let search = SearchConfig { strategy, ..base };
        c.bench_function(name, |b| {
            b.iter(|| {
                search_required_ebn0_with_threads(&target, 1e-2, black_box(&opts), &search, 1)
            })
        });
    }
}

criterion_group! {
    name = ber_search;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search
}
criterion_main!(ber_search);
