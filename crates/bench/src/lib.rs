//! Figure/table regeneration harness for the DATE'13 reproduction.
//!
//! Each binary in `src/bin/` regenerates one exhibit of the paper
//! (`fig1_pathloss` … `fig10_latency_ebn0`, `table1_link_budget`) or one
//! ablation (`ablation_*`), printing the same rows/series the paper
//! reports. `benches/kernels.rs` holds the Criterion performance benches
//! for the hot computational kernels.
//!
//! Runners accept a `--full` flag where a higher-fidelity (slower) preset
//! exists; the default presets finish in seconds to a few minutes.

use std::fmt::Write as _;

/// Prints a fixed-width table with a header rule.
///
/// # Panics
///
/// Panics if any row has a different arity than the header.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().saturating_sub(2)));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        println!("{out}");
    }
}

/// Formats a float with the given precision.
pub fn fmt(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats an optional float ("-" when absent, e.g. past saturation).
pub fn fmt_opt(x: Option<f64>, prec: usize) -> String {
    match x {
        Some(v) => fmt(v, prec),
        None => "-".to_string(),
    }
}

/// True when the CLI was invoked with the given flag.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Value of a `--flag value` pair, if present.
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_variants() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(2.5), 1), "2.5");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        print_table("demo", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn absent_flag_value_is_none() {
        assert_eq!(flag_value("--definitely-not-passed"), None);
    }
}
