//! Figure/table regeneration harness for the DATE'13 reproduction.
//!
//! Each binary in `src/bin/` regenerates one exhibit of the paper
//! (`fig1_pathloss` … `fig10_latency_ebn0`, `table1_link_budget`) or one
//! ablation (`ablation_*`), printing the same rows/series the paper
//! reports. `benches/kernels.rs` holds the Criterion performance benches
//! for the hot computational kernels.
//!
//! Runners accept a `--full` flag where a higher-fidelity (slower) preset
//! exists; the default presets finish in seconds to a few minutes.

use std::fmt::Write as _;
use wi_ldpc::ber::SearchStrategy;
use wi_noc::des::traffic::TrafficKind;
use wi_noc::routing::RoutingKind;

/// Prints a fixed-width table with a header rule.
///
/// # Panics
///
/// Panics if any row has a different arity than the header.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().saturating_sub(2)));
    for row in rows {
        let mut out = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        println!("{out}");
    }
}

/// Formats a float with the given precision.
pub fn fmt(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats an optional float ("-" when absent, e.g. past saturation).
pub fn fmt_opt(x: Option<f64>, prec: usize) -> String {
    match x {
        Some(v) => fmt(v, prec),
        None => "-".to_string(),
    }
}

/// True when the CLI was invoked with the given flag.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Reports a CLI usage error and exits with status 2 — the graceful
/// replacement for panicking on bad arguments: no backtrace hint, just
/// the message and a pointer to `--help`.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

/// Exits via [`die`] when both mutually exclusive flags were passed.
pub fn forbid_both(a: &str, b: &str) {
    if has_flag(a) && has_flag(b) {
        die(&format!("{a} and {b} are mutually exclusive"));
    }
}

/// Prints `usage` and exits when the CLI was invoked with `--help` or
/// `-h`. Call this before any expensive work so every bin answers
/// `--help` instantly.
pub fn help_flag(usage: &str) {
    if has_flag("--help") || has_flag("-h") {
        println!("{usage}");
        std::process::exit(0);
    }
}

/// Value of a `--flag value` pair, if present.
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Parsed form of the shared `--routing` flag: one policy, or `all`
/// (print the policy × traffic saturation-knee matrix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingArg {
    /// A single routing policy.
    Policy(RoutingKind),
    /// Sweep every policy and print the knee matrix.
    All,
}

/// Parses a `--routing` spelling: a [`RoutingKind`] spelling or `all`.
pub fn parse_routing_arg(s: &str) -> Option<RoutingArg> {
    if s == "all" {
        return Some(RoutingArg::All);
    }
    RoutingKind::parse(s).map(RoutingArg::Policy)
}

/// The shared `--routing` flag, if present. Exits via [`die`] on an
/// unknown spelling.
pub fn routing_flag() -> Option<RoutingArg> {
    flag_value("--routing").map(|s| {
        parse_routing_arg(&s).unwrap_or_else(|| {
            die(&format!(
                "unknown routing policy {s:?} (try dor, o1turn, valiant[:k], rlb[:k], \
                 adaptive, all)"
            ))
        })
    })
}

/// The shared `--search` flag: the required-Eb/N0 search strategy
/// ([`SearchStrategy::Bisection`] when absent — the bit-identical
/// pre-redesign ladder). Exits via [`die`] on an unknown spelling.
pub fn search_flag() -> SearchStrategy {
    match flag_value("--search") {
        Some(s) => SearchStrategy::parse(&s).unwrap_or_else(|| {
            die(&format!(
                "unknown search strategy {s:?} (try bisect, concurrent, paired)"
            ))
        }),
        None => SearchStrategy::Bisection,
    }
}

/// The shared `--traffic` flag ([`TrafficKind::Uniform`] when absent).
/// Exits via [`die`] on an unknown spelling.
pub fn traffic_flag() -> TrafficKind {
    match flag_value("--traffic") {
        Some(s) => TrafficKind::parse(&s).unwrap_or_else(|| {
            die(&format!(
                "unknown traffic pattern {s:?} (try uniform, hotspot, \
                 hotspot:<node>:<frac>, transpose, bitrev, neighbor)"
            ))
        }),
        None => TrafficKind::Uniform,
    }
}

/// The shared `--reps` flag (replications per sweep point). Exits via
/// [`die`] unless the value is a positive integer.
pub fn reps_flag(default: usize) -> usize {
    match flag_value("--reps") {
        Some(s) => match s.parse() {
            Ok(reps) if reps > 0 => reps,
            _ => die(&format!("--reps takes a positive integer, got {s:?}")),
        },
        None => default,
    }
}

/// The shared `--batch` flag: the inter-frame decode batch width the BER
/// targets decode in lockstep ([`wi_ldpc::batch::DEFAULT_LANES`] when
/// absent). Any width produces bit-identical per-frame results. Exits via
/// [`die`] unless the value parses to one of 1, 2, 4, 8.
pub fn batch_flag() -> usize {
    match flag_value("--batch") {
        Some(s) => match s.parse::<usize>() {
            Ok(batch) => match wi_ldpc::batch::lanes_problem(batch) {
                None => batch,
                Some(problem) => die(&format!("--batch: {problem}")),
            },
            Err(_) => die(&format!("--batch takes an integer (1, 2, 4, 8), got {s:?}")),
        },
        None => wi_ldpc::batch::DEFAULT_LANES,
    }
}

/// Parses a comma-separated list of positive injection rates.
pub fn parse_rates(s: &str) -> Option<Vec<f64>> {
    let rates: Vec<f64> = s
        .split(',')
        .map(|part| part.trim().parse::<f64>().ok())
        .collect::<Option<_>>()?;
    if rates.is_empty() || !rates.iter().all(|&r| r.is_finite() && r > 0.0) {
        return None;
    }
    Some(rates)
}

/// The shared `--rates` flag: a comma-separated injection-rate grid
/// overriding a bin's default (e.g. `--rates 0.05,0.15,0.25` for the CI
/// smoke runs). Exits via [`die`] if any rate fails to parse or is not
/// positive.
pub fn rates_flag() -> Option<Vec<f64>> {
    flag_value("--rates").map(|s| {
        parse_rates(&s).unwrap_or_else(|| {
            die(&format!(
                "--rates takes comma-separated positive rates, got {s:?}"
            ))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_variants() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(2.5), 1), "2.5");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_panic() {
        print_table("demo", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn absent_flag_value_is_none() {
        assert_eq!(flag_value("--definitely-not-passed"), None);
    }

    #[test]
    fn routing_arg_parses_policies_and_all() {
        assert_eq!(
            parse_routing_arg("dor"),
            Some(RoutingArg::Policy(RoutingKind::DimensionOrder))
        );
        assert_eq!(
            parse_routing_arg("o1turn"),
            Some(RoutingArg::Policy(RoutingKind::O1Turn))
        );
        assert_eq!(
            parse_routing_arg("valiant:4"),
            Some(RoutingArg::Policy(RoutingKind::Valiant { choices: 4 }))
        );
        assert_eq!(
            parse_routing_arg("rlb:4"),
            Some(RoutingArg::Policy(RoutingKind::RlbValiant { choices: 4 }))
        );
        assert_eq!(
            parse_routing_arg("adaptive"),
            Some(RoutingArg::Policy(RoutingKind::Adaptive))
        );
        assert_eq!(parse_routing_arg("all"), Some(RoutingArg::All));
        assert_eq!(parse_routing_arg("nope"), None);
    }

    #[test]
    fn rates_parse_rejects_garbage() {
        assert_eq!(parse_rates("0.05,0.15,0.25"), Some(vec![0.05, 0.15, 0.25]));
        assert_eq!(parse_rates(" 0.1 , 0.2 "), Some(vec![0.1, 0.2]));
        assert_eq!(parse_rates("0.1,x"), None);
        assert_eq!(parse_rates("0.1,-0.2"), None);
        assert_eq!(parse_rates("0.0"), None);
        assert_eq!(parse_rates(""), None);
    }

    #[test]
    fn absent_shared_flags_take_defaults() {
        assert_eq!(traffic_flag(), TrafficKind::Uniform);
        assert_eq!(reps_flag(3), 3);
        assert_eq!(routing_flag(), None);
        assert_eq!(rates_flag(), None);
        assert_eq!(search_flag(), SearchStrategy::Bisection);
        assert_eq!(batch_flag(), wi_ldpc::batch::DEFAULT_LANES);
    }
}
