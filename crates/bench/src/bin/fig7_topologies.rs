//! Fig. 7: the four topology types, as a structural-metrics table
//! (the quantitative counterpart of the paper's drawing).

use wi_bench::{fmt, print_table};
use wi_noc::metrics::fig7_topologies;

fn main() {
    let rows: Vec<Vec<String>> = fig7_topologies()
        .iter()
        .map(|(m, _)| {
            vec![
                m.name.clone(),
                m.routers.to_string(),
                m.modules.to_string(),
                m.concentration.to_string(),
                m.bidirectional_links.to_string(),
                m.max_radix.to_string(),
                m.diameter.to_string(),
                fmt(m.mean_hops, 2),
                m.bisection_links.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — topology structural metrics (64 modules each)",
        &[
            "topology",
            "routers",
            "modules",
            "conc.",
            "links",
            "radix",
            "diam.",
            "avg hops",
            "bisection",
        ],
        &rows,
    );
}
