//! Ablation: star-mesh concentration factor (§IV) — the latency/throughput
//! trade of concentrating more modules on fewer routers, including the
//! radix cost the paper attributes to inter-router-link multiplication.

use wi_bench::{fmt, print_table};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::metrics::topology_metrics;
use wi_noc::topology::Topology;

fn main() {
    // 64 modules arranged with increasing concentration.
    let configs: [(&str, Topology); 4] = [
        ("8x8 c=1", Topology::mesh2d(8, 8)),
        ("4x8 c=2", Topology::star_mesh(4, 8, 2)),
        ("4x4 c=4", Topology::star_mesh(4, 4, 4)),
        ("2x4 c=8", Topology::star_mesh(2, 4, 8)),
    ];
    let params = RouterParams::default();
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, topo)| {
            let model = AnalyticModel::new(topo, params);
            let metrics = topology_metrics(name, topo);
            vec![
                name.to_string(),
                fmt(model.zero_load_latency(), 2),
                fmt(model.saturation_rate(), 3),
                metrics.max_radix.to_string(),
                metrics.bisection_links.to_string(),
            ]
        })
        .collect();
    print_table(
        "ablation — concentration at 64 modules",
        &[
            "topology",
            "zero-load lat/cyc",
            "saturation",
            "max radix",
            "bisection",
        ],
        &rows,
    );
    println!("\nshape: concentration lowers zero-load latency but collapses saturation");
    println!("throughput and inflates router radix — §IV's argument for the 3D mesh.");

    // §IV's remedy and its cost: multiple inter-router links on the
    // star-mesh recover throughput but multiply the port count further.
    let star = Topology::star_mesh(4, 4, 4);
    let irl_rows: Vec<Vec<String>> = [1usize, 2, 4]
        .iter()
        .map(|&m| {
            let model = AnalyticModel::new(&star, params).with_irl_multiplicity(m);
            vec![
                m.to_string(),
                fmt(model.zero_load_latency(), 2),
                fmt(model.saturation_rate(), 3),
                (4 + 4 * m).to_string(),
            ]
        })
        .collect();
    print_table(
        "ablation — star-mesh 4x4 c=4 with multiple IRLs",
        &["IRLs", "zero-load lat/cyc", "saturation", "max radix"],
        &irl_rows,
    );
    println!("\nIRLs buy back star-mesh throughput at quadratically growing router area,");
    println!("and the scaling is manual — the 3D mesh gets its bandwidth structurally.");
}
