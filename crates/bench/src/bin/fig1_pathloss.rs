//! Fig. 1: theoretical pathloss vs. synthetic measurement data,
//! board-to-board, 220–245 GHz.
//!
//! Series match the paper's legend: the computed log-distance models for
//! free space (n = 2.000) and parallel copper boards (fitted exponent), the
//! synthetic VNA "measurements" for both campaigns, and the bare free-space
//! pathloss with the ±antenna-gain reference curves.

use wi_bench::{fmt, print_table};
use wi_channel::measurement::{copper_board_sweep, free_space_sweep};
use wi_channel::pathloss::PathlossModel;
use wi_channel::vna::SyntheticVna;

fn main() {
    let vna = SyntheticVna::paper_default();
    let distances: Vec<f64> = (1..=20).map(|i| 0.01 * i as f64).collect();
    let free = free_space_sweep(&vna, &distances);
    let board_distances: Vec<f64> = (4..=20).map(|i| 0.01 * i as f64).collect();
    let boards = copper_board_sweep(&vna, &board_distances);

    let fs_model = PathlossModel::paper_free_space();
    let cb_model = boards.fit.into_model();

    println!("Fig. 1 — pathloss vs distance (232.5 GHz centre)");
    println!(
        "fitted exponents: free space n = {:.4} (paper 2.000), copper boards n = {:.4} (paper 2.0454)",
        free.fit.exponent, boards.fit.exponent
    );

    let rows: Vec<Vec<String>> = distances
        .iter()
        .map(|&d| {
            let measured_fs = free
                .samples
                .iter()
                .find(|s| (s.distance_m - d).abs() < 1e-9)
                .map(|s| s.pathloss_db);
            let measured_cb = boards
                .samples
                .iter()
                .find(|s| (s.distance_m - d).abs() < 1e-9)
                .map(|s| s.pathloss_db);
            vec![
                fmt(d * 1e3, 0),
                fmt(fs_model.pathloss_db(d), 2),
                fmt(cb_model.pathloss_db(d), 2),
                measured_fs.map(|v| fmt(v, 2)).unwrap_or_else(|| "-".into()),
                measured_cb.map(|v| fmt(v, 2)).unwrap_or_else(|| "-".into()),
                fmt(fs_model.pathloss_db(d) - 2.0 * 9.5, 2),
                fmt(fs_model.pathloss_db(d) - 2.0 * 12.0, 2),
            ]
        })
        .collect();
    print_table(
        "pathloss / dB",
        &[
            "d/mm",
            "model n=2.000",
            "model boards",
            "meas. freespace",
            "meas. boards",
            "+2x9.5dB horns",
            "+2x12dB arrays",
        ],
        &rows,
    );
}
