//! Table I: link budget parameters for board-to-board communications.

use wi_bench::{fmt, print_table};
use wi_channel::pathloss::PathlossModel;
use wi_linkbudget::budget::LinkBudget;

fn main() {
    let model = PathlossModel::paper_free_space();
    let budget = LinkBudget::paper_longest_link_butler();

    let mut rows: Vec<Vec<String>> = budget
        .table()
        .into_iter()
        .map(|l| vec![l.name, l.unit, fmt(l.value, 1)])
        .collect();
    // The paper lists both extreme pathlosses explicitly.
    rows.insert(
        1,
        vec![
            "Path loss for shortest link 0.1m (232.5 GHz)".into(),
            "dB".into(),
            fmt(model.pathloss_db(0.1), 1),
        ],
    );
    rows.insert(
        2,
        vec![
            "Path loss for largest link 0.3m (232.5 GHz)".into(),
            "dB".into(),
            fmt(model.pathloss_db(0.3), 1),
        ],
    );
    rows.insert(
        3,
        vec![
            "Path loss exponent".into(),
            "-".into(),
            fmt(model.exponent, 0),
        ],
    );
    print_table(
        "Table I — link budget parameters",
        &["parameter", "unit", "value"],
        &rows,
    );

    println!("\npaper values: PL(0.1 m) = 59.8 dB, PL(0.3 m) = 69.3 dB, NF = 10 dB, array 12 dB,");
    println!("Butler 5 dB, polarization 3 dB, implementation 5 dB, T_RX = 323 K");
}
