//! Fig. 2: impulse response at 50 mm antenna distance, free space versus
//! parallel copper boards (ahead link).
//!
//! Prints the significant peaks of both impulse responses and verifies the
//! paper's headline conclusion: every reflection sits ≥ 15 dB below the
//! line-of-sight path.

use wi_bench::{fmt, print_table};
use wi_channel::measurement::impulse_comparison;
use wi_channel::vna::SyntheticVna;

fn main() {
    let vna = SyntheticVna::paper_default();
    let cmp = impulse_comparison(&vna, 0.05, 1.5e-9);

    for (name, ir) in [
        ("freespace", &cmp.free_space),
        ("parallel copper boards", &cmp.copper_boards),
    ] {
        let (t0, p0) = ir.peak();
        let peaks = ir.peaks(p0 - 45.0);
        let rows: Vec<Vec<String>> = peaks
            .iter()
            .map(|&(t, p)| vec![fmt(t * 1e9, 3), fmt(p, 1), fmt(p - p0, 1)])
            .collect();
        print_table(
            &format!("Fig. 2 peaks — {name} (LOS at {:.3} ns)", t0 * 1e9),
            &["tau/ns", "level/dB", "rel. LOS/dB"],
            &rows,
        );
        let echo = ir
            .strongest_echo_rel_db(80e-12)
            .unwrap_or(f64::NEG_INFINITY);
        println!(
            "strongest echo: {echo:.1} dB below LOS (paper: always at least 15 dB below) {}",
            if echo <= -15.0 { "[ok]" } else { "[VIOLATION]" }
        );
    }
}
