//! Ablation: oversampling factor M of the 1-bit receiver.
//!
//! §III: "we found 5-fold oversampling as the smallest sampling rate, which
//! enables unique detection" — this sweep shows why: unique detection of
//! 4-ASK fails below M = 5 for the designed ramp-plus-bias family, and the
//! symbolwise information rate grows with M.

use wi_bench::{fmt, print_table};
use wi_quantrx::design::{design_suboptimal, DesignOptions};
use wi_quantrx::info_rate::{snr_db_to_sigma, symbolwise_information_rate};
use wi_quantrx::modulation::AskModulation;
use wi_quantrx::trellis::ChannelTrellis;
use wi_quantrx::unique::unique_detection;

fn main() {
    let modu = AskModulation::four_ask();
    let sigma = snr_db_to_sigma(25.0);
    let mut rows = Vec::new();
    for m in [1usize, 2, 3, 4, 5, 6, 8] {
        let opts = DesignOptions {
            oversampling: m,
            max_evals: 400,
            ..DesignOptions::default()
        };
        let design = design_suboptimal(&modu, &opts);
        let trellis = ChannelTrellis::new(&modu, &design.filter);
        let unique = unique_detection(&trellis).is_unique();
        let rate = symbolwise_information_rate(&trellis, sigma);
        rows.push(vec![
            m.to_string(),
            if unique { "yes" } else { "no" }.to_string(),
            fmt(design.objective, 4),
            fmt(rate, 3),
        ]);
    }
    print_table(
        "ablation — oversampling factor (4-ASK, designed ISI, 25 dB)",
        &["M", "unique detection", "margin", "symbolwise rate/bpcu"],
        &rows,
    );
    println!("\npaper: M = 5 is the smallest factor enabling unique detection of 4-ASK.");
}
