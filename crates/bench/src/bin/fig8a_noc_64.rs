//! Fig. 8(a): average packet latency versus injection rate at 64 modules —
//! 8×8 2D mesh vs 4×4(×4) star-mesh vs 4×4×4 3D mesh.
//!
//! With `--des`, cross-validates each analytic point with the
//! discrete-event simulator.

use wi_bench::{fmt, fmt_opt, has_flag, print_table};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::{simulate, DesConfig};
use wi_noc::topology::Topology;

fn main() {
    let mesh2d = Topology::mesh2d(8, 8);
    let star = Topology::star_mesh(4, 4, 4);
    let mesh3d = Topology::mesh3d(4, 4, 4);
    let params = RouterParams::default();
    let models = [
        ("2D-Mesh", AnalyticModel::new(&mesh2d, params)),
        ("Star-Mesh", AnalyticModel::new(&star, params)),
        ("3D-Mesh", AnalyticModel::new(&mesh3d, params)),
    ];

    let rates: Vec<f64> = (1..=80).map(|k| 0.01 * k as f64).collect();
    let mut rows = Vec::new();
    for &rate in &rates {
        // Keep the table readable: print every 0.05 plus fine steps near
        // the knees.
        if !((rate * 100.0) as usize).is_multiple_of(5) && rate > 0.05 {
            continue;
        }
        let mut row = vec![fmt(rate, 2)];
        for (_, m) in &models {
            row.push(fmt_opt(m.mean_latency(rate), 2));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 8a — average packet latency / cycles (64 modules)",
        &["inj. rate", "2D-Mesh", "Star-Mesh", "3D-Mesh"],
        &rows,
    );

    println!("\nlow-load latency / saturation rate:");
    for (name, m) in &models {
        println!(
            "  {name:10}: {:5.1} cycles / {:.2} flits/cycle/module",
            m.zero_load_latency(),
            m.saturation_rate()
        );
    }
    println!("  paper     : 2D 13 cy / 0.41, star 7 cy / 0.19, 3D 10 cy / 0.75");

    if has_flag("--des") {
        println!("\nDES cross-validation (exponential service):");
        for (name, topo) in [
            ("2D-Mesh", &mesh2d),
            ("Star-Mesh", &star),
            ("3D-Mesh", &mesh3d),
        ] {
            for rate in [0.05, 0.15] {
                let des = simulate(
                    topo,
                    &DesConfig {
                        injection_rate: rate,
                        measured_packets: 30_000,
                        ..DesConfig::default()
                    },
                );
                println!(
                    "  {name:10} @ {rate:.2}: DES {:.2} +/- {:.2} cycles",
                    des.mean_latency,
                    2.0 * des.stderr
                );
            }
        }
    }
}
