//! Fig. 8(a): average packet latency versus injection rate at 64 modules —
//! 8×8 2D mesh vs 4×4(×4) star-mesh vs 4×4×4 3D mesh.
//!
//! With `--des`, every printed rate is cross-validated with the
//! discrete-event simulator: a multi-replication sweep per topology adds
//! a `DES ±2se` column next to each analytic column, plus the measured
//! saturation knee. `--traffic <uniform|hotspot[:node:frac]|transpose|`
//! `bitrev|neighbor>` selects the traffic pattern (the analytic model is
//! uniform-only; non-uniform patterns show how far the paper's uniform
//! assumption carries) and `--reps <k>` the replications per rate
//! (default 3).

use wi_bench::{flag_value, fmt, fmt_opt, has_flag, print_table};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::traffic::{TrafficKind, TrafficPattern};
use wi_noc::des::{sweep, DesConfig, SweepConfig, SweepResult};
use wi_noc::topology::Topology;

fn main() {
    let mesh2d = Topology::mesh2d(8, 8);
    let star = Topology::star_mesh(4, 4, 4);
    let mesh3d = Topology::mesh3d(4, 4, 4);
    let params = RouterParams::default();
    let models = [
        ("2D-Mesh", AnalyticModel::new(&mesh2d, params)),
        ("Star-Mesh", AnalyticModel::new(&star, params)),
        ("3D-Mesh", AnalyticModel::new(&mesh3d, params)),
    ];

    let des = has_flag("--des");
    let traffic = match flag_value("--traffic") {
        Some(s) => TrafficKind::parse(&s)
            .unwrap_or_else(|| panic!("unknown traffic pattern {s:?} (try uniform, hotspot, hotspot:<node>:<frac>, transpose, bitrev, neighbor)")),
        None => TrafficKind::Uniform,
    };
    let reps: usize = flag_value("--reps")
        .map(|s| s.parse().expect("--reps takes a positive integer"))
        .unwrap_or(3);

    // Printed rates: every 0.05 plus fine steps near the knees.
    let rates: Vec<f64> = (1..=80)
        .map(|k| 0.01 * k as f64)
        .filter(|&r| ((r * 100.0) as usize).is_multiple_of(5) || r <= 0.05)
        .collect();

    // One parallel replication sweep per topology covers every printed
    // rate (incomplete replications mark saturation).
    let sweeps: Option<Vec<SweepResult>> = des.then(|| {
        [&mesh2d, &star, &mesh3d]
            .iter()
            .map(|topo| {
                let cfg = SweepConfig::new(
                    rates.clone(),
                    reps,
                    DesConfig {
                        traffic,
                        warmup_packets: 1_000,
                        measured_packets: 10_000,
                        max_events: 5_000_000,
                        ..DesConfig::default()
                    },
                );
                sweep(topo, &cfg)
            })
            .collect()
    });

    let mut headers: Vec<&str> = vec!["inj. rate"];
    for (name, _) in &models {
        headers.push(name);
        if des {
            headers.push("DES ±2se");
        }
    }
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = vec![fmt(rate, 2)];
        for (mi, (_, m)) in models.iter().enumerate() {
            row.push(fmt_opt(m.mean_latency(rate), 2));
            if let Some(sweeps) = &sweeps {
                let p = sweeps[mi].points[ri];
                row.push(if p.completed == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr)
                });
            }
        }
        rows.push(row);
    }
    let title = if des {
        format!(
            "Fig. 8a — packet latency / cycles (64 modules, analytic vs DES, {} traffic, {} reps)",
            traffic.name(),
            reps
        )
    } else {
        "Fig. 8a — average packet latency / cycles (64 modules)".to_string()
    };
    print_table(&title, &headers, &rows);

    println!("\nlow-load latency / saturation rate:");
    for (mi, (name, m)) in models.iter().enumerate() {
        let knee = sweeps
            .as_ref()
            .map(|s| format!(", DES knee {}", fmt_opt(s[mi].saturation_knee, 2)))
            .unwrap_or_default();
        println!(
            "  {name:10}: {:5.1} cycles / {:.2} flits/cycle/module{knee}",
            m.zero_load_latency(),
            m.saturation_rate()
        );
    }
    println!("  paper     : 2D 13 cy / 0.41, star 7 cy / 0.19, 3D 10 cy / 0.75");
}
