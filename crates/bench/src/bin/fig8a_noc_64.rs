//! Fig. 8(a): average packet latency versus injection rate at 64 modules —
//! 8×8 2D mesh vs 4×4(×4) star-mesh vs 4×4×4 3D mesh.
//!
//! With `--des`, every printed rate is cross-validated with the
//! discrete-event simulator: a multi-replication sweep per topology adds
//! a `DES ±2se` column next to each analytic column, plus the measured
//! saturation knee. `--traffic <uniform|hotspot[:node:frac]|transpose|`
//! `bitrev|neighbor>` selects the traffic pattern (the analytic model is
//! uniform-only; non-uniform patterns show how far the paper's uniform
//! assumption carries), `--reps <k>` the replications per rate (default
//! 3) and `--rates <csv>` overrides the rate grid.
//!
//! `--routing <dor|o1turn|valiant[:k]|rlb[:k]|adaptive>` selects the
//! routing policy of the DES sweeps (implies `--des`; the analytic
//! columns stay dimension-order). `--routing all` instead prints the
//! policy × traffic saturation-knee matrix on the 4×4×4 3D mesh — the
//! headline table of the randomized-routing study. Measured knees
//! (3 reps, default grid, flits/cycle/module):
//!
//! | traffic   |   dor | o1turn | valiant |   rlb | adaptive |
//! |-----------|-------|--------|---------|-------|----------|
//! | uniform   | >0.80 |  >0.80 |    0.45 | >0.80 |    >0.80 |
//! | hotspot   |  0.19 |   0.19 |    0.23 |  0.19 |     0.19 |
//! | transpose |  0.35 |   0.55 |    0.40 |  0.50 |     0.70 |
//! | bitrev    |  0.23 |   0.50 |    0.40 |  0.45 |     0.75 |
//! | neighbor  | >0.80 |  >0.80 |    0.45 | >0.80 |    >0.80 |
//!
//! Dimension-order's adversarial collapses (transpose 0.35, bitrev 0.23
//! vs uniform's >0.80) recover under O1TURN (0.55 / 0.50), which spreads
//! minimal paths over all six dimension orders at no uniform-traffic
//! cost. Valiant flattens the matrix instead — every pattern lands near
//! 0.40–0.45 — raising the worst cases (bitrev 0.23 → 0.40, hotspot
//! 0.19 → 0.23; the hotspot knee is ejection-port-bound, which no route
//! diversification can widen) while its two-leg detours halve the
//! benign-pattern capacity. RLB keeps Valiant's randomization but stays
//! inside the minimal quadrant (transpose 0.50, bitrev 0.45), so it
//! recovers most of the adversarial collapse without the uniform-
//! capacity tax. Adaptive routing beats every oblivious policy on the
//! adversarial patterns (transpose 0.70, bitrev 0.75) at full uniform
//! capacity — congestion-aware steering reacts to the actual queue
//! state instead of spreading load blind — and only falls to Valiant on
//! hotspot (0.19 vs 0.23), where minimality itself is the constraint:
//! every minimal path funnels into the same ejection port, and only
//! Valiant's non-minimal detours sidestep the funnel's feeders.

use wi_bench::{
    fmt, fmt_opt, has_flag, help_flag, print_table, rates_flag, reps_flag, routing_flag,
    traffic_flag, RoutingArg,
};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::traffic::{TrafficKind, TrafficPattern};
use wi_noc::des::{sweep, sweep_policies, DesConfig, SweepConfig, SweepResult};
use wi_noc::routing::RoutingKind;
use wi_noc::topology::Topology;

/// The five policies of the `--routing all` matrix.
const MATRIX_POLICIES: [RoutingKind; 5] = [
    RoutingKind::DimensionOrder,
    RoutingKind::O1Turn,
    RoutingKind::Valiant { choices: 8 },
    RoutingKind::RlbValiant { choices: 8 },
    RoutingKind::Adaptive,
];

const USAGE: &str = "\
fig8a_noc_64 — average packet latency vs injection rate, 64 modules (Fig. 8a)

USAGE:
    fig8a_noc_64 [FLAGS]

FLAGS:
    --des                cross-validate every printed rate with the
                         discrete-event simulator (adds a `DES +-2se`
                         column per topology plus the measured saturation
                         knee; ~1-2 min)
    --traffic <kind>     DES traffic pattern: uniform (default),
                         hotspot[:node:frac], transpose, bitrev, neighbor
    --routing <policy>   routing policy of the DES sweeps (implies
                         --des): dor, o1turn, valiant[:k], rlb[:k],
                         adaptive; `all` prints the policy x traffic
                         saturation-knee matrix on the 4x4x4 3D mesh
                         (~10-20 min)
    --reps <k>           DES replications per rate (default 3)
    --rates <csv>        override the injection-rate grid, e.g.
                         0.05,0.15,0.25 (the CI smoke grid)
    --help, -h           print this help

The analytic columns are always dimension-order; non-default routing only
affects the simulator. Exact recipes: docs/REPRODUCING.md.";

fn main() {
    help_flag(USAGE);
    let traffic = traffic_flag();
    let reps = reps_flag(3);
    let routing = routing_flag();

    if let Some(RoutingArg::All) = routing {
        routing_matrix(reps, rates_flag());
        return;
    }
    let policy = match routing {
        Some(RoutingArg::Policy(k)) => k,
        _ => RoutingKind::DimensionOrder,
    };

    let mesh2d = Topology::mesh2d(8, 8);
    let star = Topology::star_mesh(4, 4, 4);
    let mesh3d = Topology::mesh3d(4, 4, 4);
    let params = RouterParams::default();
    let models = [
        ("2D-Mesh", AnalyticModel::new(&mesh2d, params)),
        ("Star-Mesh", AnalyticModel::new(&star, params)),
        ("3D-Mesh", AnalyticModel::new(&mesh3d, params)),
    ];

    // A non-default routing policy only affects the simulator, so asking
    // for one implies the DES columns.
    let des = has_flag("--des") || routing.is_some();

    // Printed rates: every 0.05 plus fine steps near the knees.
    let rates: Vec<f64> = rates_flag().unwrap_or_else(|| {
        (1..=80)
            .map(|k| 0.01 * k as f64)
            .filter(|&r| ((r * 100.0) as usize).is_multiple_of(5) || r <= 0.05)
            .collect()
    });

    // One parallel replication sweep per topology covers every printed
    // rate (incomplete replications mark saturation).
    let sweeps: Option<Vec<SweepResult>> = des.then(|| {
        [&mesh2d, &star, &mesh3d]
            .iter()
            .map(|topo| {
                let cfg = SweepConfig::new(
                    rates.clone(),
                    reps,
                    DesConfig {
                        traffic,
                        routing: policy,
                        warmup_packets: 1_000,
                        measured_packets: 10_000,
                        max_events: 5_000_000,
                        ..DesConfig::default()
                    },
                );
                sweep(topo, &cfg)
            })
            .collect()
    });

    let mut headers: Vec<&str> = vec!["inj. rate"];
    for (name, _) in &models {
        headers.push(name);
        if des {
            headers.push("DES ±2se");
        }
    }
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = vec![fmt(rate, 2)];
        for (mi, (_, m)) in models.iter().enumerate() {
            row.push(fmt_opt(m.mean_latency(rate), 2));
            if let Some(sweeps) = &sweeps {
                let p = sweeps[mi].points[ri];
                row.push(if p.completed == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr)
                });
            }
        }
        rows.push(row);
    }
    let title = if des {
        format!(
            "Fig. 8a — packet latency / cycles (64 modules, analytic vs DES, {} traffic, {} routing, {} reps)",
            traffic.name(),
            policy.name(),
            reps
        )
    } else {
        "Fig. 8a — average packet latency / cycles (64 modules)".to_string()
    };
    print_table(&title, &headers, &rows);

    println!("\nlow-load latency / saturation rate:");
    for (mi, (name, m)) in models.iter().enumerate() {
        let knee = sweeps
            .as_ref()
            .map(|s| format!(", DES knee {}", fmt_opt(s[mi].saturation_knee, 2)))
            .unwrap_or_default();
        println!(
            "  {name:10}: {:5.1} cycles / {:.2} flits/cycle/module{knee}",
            m.zero_load_latency(),
            m.saturation_rate()
        );
    }
    println!("  paper     : 2D 13 cy / 0.41, star 7 cy / 0.19, 3D 10 cy / 0.75");
}

/// `--routing all`: the policy × traffic saturation-knee matrix on the
/// paper's winning 4×4×4 3D mesh.
fn routing_matrix(reps: usize, rates: Option<Vec<f64>>) {
    let topo = Topology::mesh3d(4, 4, 4);
    let traffics = [
        TrafficKind::Uniform,
        TrafficKind::Hotspot {
            node: 0,
            fraction: 0.1,
        },
        TrafficKind::Transpose,
        TrafficKind::BitReversal,
        TrafficKind::NearestNeighbor,
    ];
    // Fine steps through the hotspot knee region (0.01 resolves the
    // dor/o1turn/valiant ordering there), coarser above; the top rate
    // bounds the knees the matrix can resolve.
    let rates: Vec<f64> = rates.unwrap_or_else(|| {
        (1..=6)
            .map(|k| 0.02 * k as f64)
            .chain((13..=26).map(|k| 0.01 * k as f64))
            .chain([0.28, 0.30])
            .chain((7..=16).map(|k| 0.05 * k as f64))
            .collect()
    });
    let max_rate = rates.iter().cloned().fold(f64::NAN, f64::max);

    let headers: Vec<&str> = std::iter::once("traffic")
        .chain(MATRIX_POLICIES.iter().map(|p| p.name()))
        .collect();
    let mut rows = Vec::new();
    for traffic in traffics {
        let cfg = SweepConfig::new(
            rates.clone(),
            reps,
            DesConfig {
                traffic,
                warmup_packets: 1_000,
                measured_packets: 8_000,
                max_events: 2_000_000,
                ..DesConfig::default()
            },
        );
        let mut row = vec![traffic.name().to_string()];
        for (_, result) in sweep_policies(&topo, &cfg, &MATRIX_POLICIES) {
            row.push(match result.saturation_knee {
                Some(k) => fmt(k, 2),
                None => format!(">{max_rate:.2}"),
            });
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig. 8a — DES saturation knees, 4x4x4 3D mesh, policy x traffic ({reps} reps)"),
        &headers,
        &rows,
    );
    println!("\nknee = first rate with a majority of incomplete replications or");
    println!("mean latency above 4x the policy's own low-load baseline; flits/cycle/module.");
}
