//! Fig. 9: the window decoder schematic, rendered as the block schedule —
//! which received blocks each decoding position reads, which block it
//! decides, and the resulting structural latency (Eq. 4).

use wi_bench::{fmt, print_table};
use wi_ldpc::window::CoupledCode;

fn main() {
    let n = 25;
    let l = 12;
    let w = 4;
    let code = CoupledCode::paper_cc(n, l, 0);
    let mcc = code.memory();

    println!("window decoder schedule: W = {w}, mcc = {mcc}, L = {l}, N = {n}, nv = 2, R = 1/2");
    let rows: Vec<Vec<String>> = (0..l)
        .map(|t| {
            let newest = (t + w - 1).min(l - 1);
            let read_back = if t == 0 {
                "-".to_string()
            } else {
                format!("y[{}..={}]", t.saturating_sub(mcc), t - 1)
            };
            vec![
                t.to_string(),
                format!("y[{t}..={newest}]"),
                read_back,
                format!("u[{t}]"),
                fmt(code.window_latency_bits(w), 0),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — sliding-window schedule",
        &[
            "position t",
            "window blocks",
            "decided blocks read",
            "target",
            "latency/bits",
        ],
        &rows,
    );

    println!(
        "\nEq. 4: T_WD = W*N*nv*R = {w}*{n}*2*0.5 = {} information bits,",
        code.window_latency_bits(w)
    );
    println!(
        "independent of L (here L = {l}); full-BP latency would be L*N*nv*R = {} bits.",
        l as f64 * n as f64
    );
}
