//! Fig. 6: information rates of 4-ASK with 5× oversampling and 1-bit
//! quantization — all six curves of the paper.
//!
//! Default uses 30k Monte-Carlo symbols for the two sequence-estimation
//! curves; `--full` uses 200k.

use wi_bench::{fmt, has_flag, print_table};
use wi_quantrx::info_rate::{
    no_oversampling_rate, sequence_information_rate, snr_db_to_sigma, symbolwise_information_rate,
    unquantized_ask_capacity, SequenceRateOptions,
};
use wi_quantrx::modulation::AskModulation;
use wi_quantrx::presets;
use wi_quantrx::trellis::ChannelTrellis;

fn main() {
    let modu = AskModulation::four_ask();
    let seq_trellis = ChannelTrellis::new(&modu, &presets::sequence_filter());
    let sym_trellis = ChannelTrellis::new(&modu, &presets::symbolwise_filter());
    let sub_trellis = ChannelTrellis::new(&modu, &presets::suboptimal_filter());
    let rect_trellis = ChannelTrellis::new(&modu, &presets::rect_filter());

    let mc = SequenceRateOptions {
        num_symbols: if has_flag("--full") { 200_000 } else { 30_000 },
        seed: 0xF16,
    };

    let snrs: Vec<f64> = (-1..=8).map(|k| k as f64 * 5.0 - 5.0).collect();
    let rows: Vec<Vec<String>> = snrs
        .iter()
        .map(|&snr| {
            let sigma = snr_db_to_sigma(snr);
            vec![
                fmt(snr, 0),
                fmt(sequence_information_rate(&seq_trellis, sigma, mc), 3),
                fmt(symbolwise_information_rate(&sym_trellis, sigma), 3),
                fmt(symbolwise_information_rate(&rect_trellis, sigma), 3),
                fmt(no_oversampling_rate(&modu, sigma), 3),
                fmt(unquantized_ask_capacity(&modu, sigma), 3),
                fmt(sequence_information_rate(&sub_trellis, sigma, mc), 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — I(X;Y) / bpcu, 4-ASK, 5x oversampling, 1-bit",
        &[
            "SNR/dB",
            "MaxIR 1Bit-OS",
            "MaxIR symbolwise",
            "Rect 1Bit-OS",
            "1Bit No-OS",
            "No Quantization",
            "Suboptimal 1Bit-OS",
        ],
        &rows,
    );
    println!("\npaper shape: sequence > symbolwise > rect at high SNR; designed ISI");
    println!("recovers ~2 bpcu while rect saturates at 1 bpcu; suboptimal close to optimal.");
}
