//! Fig. 5: impulse responses of the four ISI filter designs.
//!
//! Default: prints the shipped pre-optimized filters. With `--optimize`,
//! re-runs the three designers from scratch (tens of seconds) and prints
//! fresh taps alongside their objective values.

use wi_bench::{fmt, has_flag, print_table};
use wi_quantrx::design::{
    design_suboptimal, optimize_sequence, optimize_symbolwise, DesignOptions,
};
use wi_quantrx::filter::IsiFilter;
use wi_quantrx::modulation::AskModulation;
use wi_quantrx::presets;

fn main() {
    let (sym, seq, sub): (IsiFilter, IsiFilter, IsiFilter) = if has_flag("--optimize") {
        let modu = AskModulation::four_ask();
        let opts = DesignOptions::default();
        let a = optimize_symbolwise(&modu, &opts);
        println!(
            "symbolwise design: {:.4} bpcu at 25 dB ({} evals)",
            a.objective, a.evals
        );
        let b = optimize_sequence(&modu, &opts);
        println!(
            "sequence design:   {:.4} bpcu at 25 dB ({} evals)",
            b.objective, b.evals
        );
        let c = design_suboptimal(&modu, &opts);
        println!(
            "suboptimal design: margin {:.4} ({} evals)",
            c.objective, c.evals
        );
        (a.filter, b.filter, c.filter)
    } else {
        (
            presets::symbolwise_filter(),
            presets::sequence_filter(),
            presets::suboptimal_filter(),
        )
    };
    let rect = presets::rect_filter();

    let filters = [
        ("(a) rectangular pulse - no ISI", &rect),
        (
            "(b) optimal ISI for symbol-by-symbol detection (SNR 25 dB)",
            &sym,
        ),
        ("(c) optimal ISI for sequence detection (SNR 25 dB)", &seq),
        (
            "(d) suboptimal ISI design (noise-free unique detection)",
            &sub,
        ),
    ];
    for (name, f) in filters {
        let rows: Vec<Vec<String>> = f
            .impulse_response()
            .iter()
            .map(|&(tau, h)| vec![fmt(tau, 1), fmt(h, 4)])
            .collect();
        print_table(&format!("Fig. 5{name}"), &["tau/T", "h"], &rows);
    }
}
