//! Fig. 3: impulse response at 150 mm antenna distance (diagonal link),
//! free space versus parallel copper boards.
//!
//! The diagonal geometry brings the board-reflection images into view in
//! addition to the equipment echoes of Fig. 2.

use wi_bench::{fmt, print_table};
use wi_channel::measurement::impulse_comparison;
use wi_channel::vna::SyntheticVna;

fn main() {
    let vna = SyntheticVna::paper_default();
    let cmp = impulse_comparison(&vna, 0.150, 2.0e-9);

    for (name, ir) in [
        ("freespace", &cmp.free_space),
        ("parallel copper boards (diagonal)", &cmp.copper_boards),
    ] {
        let (t0, p0) = ir.peak();
        let peaks = ir.peaks(p0 - 45.0);
        let rows: Vec<Vec<String>> = peaks
            .iter()
            .map(|&(t, p)| vec![fmt(t * 1e9, 3), fmt(p, 1), fmt(p - p0, 1)])
            .collect();
        print_table(
            &format!("Fig. 3 peaks — {name} (LOS at {:.3} ns)", t0 * 1e9),
            &["tau/ns", "level/dB", "rel. LOS/dB"],
            &rows,
        );
        let echo = ir
            .strongest_echo_rel_db(80e-12)
            .unwrap_or(f64::NEG_INFINITY);
        println!(
            "strongest echo: {echo:.1} dB below LOS {}",
            if echo <= -15.0 { "[ok]" } else { "[VIOLATION]" }
        );
    }
    // The board trace must show more multipath content than free space.
    let fp = cmp.free_space.peaks(cmp.free_space.peak().1 - 40.0).len();
    let bp = cmp
        .copper_boards
        .peaks(cmp.copper_boards.peak().1 - 40.0)
        .len();
    println!("\npeak count within 40 dB: freespace {fp}, boards {bp}");
}
