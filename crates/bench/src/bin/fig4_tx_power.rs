//! Fig. 4: required transmit power versus target SNR at the receiver, for
//! the three link cases of §II.B.

use wi_bench::{fmt, print_table};
use wi_linkbudget::budget::LinkBudget;

fn main() {
    let shortest = LinkBudget::paper_shortest_link();
    let longest = LinkBudget::paper_longest_link();
    let butler = LinkBudget::paper_longest_link_butler();

    let snrs: Vec<f64> = (0..=35).step_by(5).map(|s| s as f64).collect();
    let rows: Vec<Vec<String>> = snrs
        .iter()
        .map(|&snr| {
            vec![
                fmt(snr, 0),
                fmt(shortest.required_tx_power_dbm(snr), 2),
                fmt(longest.required_tx_power_dbm(snr), 2),
                fmt(butler.required_tx_power_dbm(snr), 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 — required P_TX / dBm",
        &[
            "SNR/dB",
            "shortest 100mm",
            "longest 300mm",
            "longest +Butler",
        ],
        &rows,
    );
    println!(
        "\nnoise floor (kTB + NF): {:.1} dBm in 25 GHz at 323 K",
        shortest.noise_floor_dbm()
    );
    println!(
        "curve offsets: +{:.1} dB pathloss delta, +{:.1} dB Butler mismatch",
        longest.pathloss_db - shortest.pathloss_db,
        butler.beamforming.loss_db()
    );
}
