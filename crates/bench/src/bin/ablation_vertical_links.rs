//! Ablation: partial TSV pillars in a 3D mesh (§IV future work) — "the
//! large area of TSVs will probably not allow to equip every router with a
//! vertical link".

use wi_bench::{fmt, print_table};
use wi_noc::analytic::RouterParams;
use wi_noc::irregular::PillarMesh3d;

fn main() {
    let params = RouterParams::default();
    let rows: Vec<Vec<String>> = [1usize, 2, 4]
        .iter()
        .map(|&pitch| {
            let mesh = PillarMesh3d::new(4, 4, 4, pitch);
            vec![
                pitch.to_string(),
                mesh.pillar_count().to_string(),
                fmt(mesh.zero_load_latency(params), 2),
            ]
        })
        .collect();
    print_table(
        "ablation — TSV pillar pitch in a 4x4x4 mesh",
        &["pitch", "TSV pillars", "zero-load latency/cyc"],
        &rows,
    );
    println!("\nshape: thinning the vertical links (16 -> 4 -> 1 pillars) buys TSV area");
    println!("at a growing latency cost, motivating the heterogeneous-link future work.");
}
