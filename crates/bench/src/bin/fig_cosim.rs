//! Faulty-link co-simulation: latency vs Eb/N0 vs offered rate.
//!
//! This is the cross-layer exhibit the paper argues for but never plots:
//! the link budget (Table 1 geometry) fixes a per-link-class Eb/N0, the
//! LDPC-CC Monte-Carlo (Fig. 10 machinery) measures the frame-error rate
//! at that Eb/N0, and the NoC DES (Fig. 8 machinery) injects exactly that
//! error rate per hop with ARQ retransmission. The output is the latency
//! vs offered-rate curve *as a function of link quality* — the saturation
//! knee walks left and the retry traffic grows as the links degrade.
//!
//! At the paper's operating point (0 dBm tx) the links sit ~20 dB above
//! the waterfall: FER interpolates to zero and the curve reproduces the
//! fault-free Fig. 8 exactly (the p = 0 bit-identity contract of
//! `wi_noc::des::fault`). The interesting regime is reached by backing
//! the tx power down until the *edge* links (worst-case diagonal, longer
//! and beamforming-impaired) fall into the waterfall while the *center*
//! links (board-spacing "ahead" channel) still decode cleanly — the
//! heterogeneous `EdgeCenter` model.
//!
//! `--error <p>` bypasses the coding layer and injects a uniform per-hop
//! probability directly (pure DES ablation). `--quick` is the CI smoke
//! preset: a uniform-error sweep that must show retransmissions and still
//! complete — it exits nonzero otherwise.

use std::time::Instant;
use wi_bench::{batch_flag, die, fmt, has_flag, help_flag, print_table, rates_flag, reps_flag};
use wi_ldpc::ber::{BerSimOptions, CoupledBerTarget};
use wi_ldpc::window::{CoupledCode, WindowDecoder};
use wi_noc::des::{
    sweep, ArqConfig, DesConfig, FaultConfig, LinkErrorModel, SweepConfig, SweepResult,
};
use wi_noc::topology::Topology;
use wi_system::config::SystemConfig;
use wi_system::cosim::{link_class_ebn0, link_error_model, FerCurve};

const USAGE: &str = "\
fig_cosim — faulty-link co-simulation: latency vs Eb/N0 vs offered rate

USAGE:
    fig_cosim [FLAGS]

FLAGS:
    --quick        CI smoke preset: small uniform-error sweep; asserts that
                   retransmissions happened and every point completed
                   (exits nonzero otherwise); seconds
    --error <p>    inject a uniform per-hop frame-error probability instead
                   of deriving per-link-class rates from the link budget +
                   measured LDPC FER curve (pure DES ablation)
    --rates <csv>  override the injection-rate grid,
                   e.g. 0.05,0.15,0.25
    --reps <k>     DES replications per rate (default 3)
    --batch <w>    inter-frame decode batch width for the FER-curve
                   Monte-Carlo (1, 2, 4 or 8; default 8) -- bit-identical
                   per frame at every width, a pure throughput knob; only
                   the full run measures a FER curve, so --quick and
                   --error ignore it
    --help, -h     print this help

The default run measures one LDPC-CC frame-error curve (~1 min), then
sweeps the 4x4x4 3D mesh at four tx powers: the paper's 0 dBm operating
point (error-free, reproduces Fig. 8 bit-for-bit) and three reduced
powers that walk the edge links into the decoder's waterfall. Exact
recipes: docs/REPRODUCING.md.";

/// Tx powers of the full co-sim sweep: the paper's operating point plus
/// three backed-off points that walk the *edge* links (6.5 dB below the
/// center class: worst-case diagonal + beamforming losses) down the
/// decoder's waterfall while the center links stay clean — light retry
/// traffic, then knee-shifting retransmission load, then drops. The
/// 0 dBm geometry puts the center link ~21.8 dB and the edge link
/// ~15.3 dB above σ² = 1.
const TX_POWERS_DBM: [f64; 4] = [0.0, -12.0, -13.0, -14.0];

fn parse_error_flag() -> Option<f64> {
    wi_bench::flag_value("--error").map(|s| match s.parse::<f64>() {
        Ok(p) if (0.0..=1.0).contains(&p) => p,
        _ => die(&format!("--error takes a probability in [0, 1], got {s:?}")),
    })
}

/// One faulty sweep on the paper's winning 4×4×4 3D mesh.
///
/// The ARQ is hop-scale (timeout of a few router cycles, gentle backoff)
/// rather than the conservative library default: on an on-chip/board
/// link the NACK round trip is a couple of cycles, and a tight timeout
/// lets retransmission *occupancy* — not idle backoff — set the
/// saturation behaviour, which is the effect this exhibit measures.
fn run_sweep(fault: FaultConfig, rates: &[f64], reps: usize, measured: usize) -> SweepResult {
    let topo = Topology::mesh3d(4, 4, 4);
    let fault = FaultConfig {
        arq: ArqConfig {
            max_retries: 6,
            timeout: 4.0,
            backoff: 1.5,
        },
        ..fault
    };
    let cfg = SweepConfig::new(
        rates.to_vec(),
        reps,
        DesConfig {
            warmup_packets: 500,
            measured_packets: measured,
            max_events: 4_000_000,
            fault,
            ..DesConfig::default()
        },
    );
    sweep(&topo, &cfg)
}

/// The CI smoke run: uniform error injection must produce retries and
/// still drain every replication.
fn quick(error_p: f64, rates: Vec<f64>, reps: usize) {
    println!("fig_cosim --quick: uniform per-hop error p = {error_p}, {reps} reps");
    let result = run_sweep(FaultConfig::uniform(error_p), &rates, reps, 2_000);
    let retries: u64 = result.points.iter().map(|p| p.retries).sum();
    let dropped: usize = result.points.iter().map(|p| p.dropped).sum();
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                fmt(p.rate, 2),
                format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr),
                format!("{}/{}", p.completed, p.replications),
                p.retries.to_string(),
                p.dropped.to_string(),
            ]
        })
        .collect();
    print_table(
        "co-sim smoke (4x4x4 3D mesh, uniform error, hop-scale ARQ)",
        &["inj. rate", "latency ±2se", "done", "retries", "dropped"],
        &rows,
    );
    // The smoke contract CI relies on: faults actually fired, and the
    // bounded-retry ARQ still let every replication drain.
    assert!(retries > 0, "smoke expected retransmissions, saw none");
    let incomplete = result
        .points
        .iter()
        .filter(|p| p.completed < p.replications)
        .count();
    assert!(
        incomplete == 0,
        "smoke expected every replication to complete, {incomplete} rate(s) saturated"
    );
    println!("\nsmoke OK: {retries} retransmissions, {dropped} drops, all replications drained");
}

fn main() {
    help_flag(USAGE);
    let reps = reps_flag(3);
    let error = parse_error_flag();

    if has_flag("--quick") {
        let rates = rates_flag().unwrap_or_else(|| vec![0.05, 0.15, 0.25]);
        quick(error.unwrap_or(0.05), rates, reps);
        return;
    }

    // Through the fault-free 3D-mesh knee (~0.75) so a degraded-link
    // knee shift is visible, not clipped by the grid.
    let rates: Vec<f64> =
        rates_flag().unwrap_or_else(|| (1..=16).map(|k| 0.05 * k as f64).collect());
    let started = Instant::now();

    if let Some(p) = error {
        // Pure DES ablation: a uniform per-hop probability, no coding layer.
        let result = run_sweep(FaultConfig::uniform(p), &rates, reps, 4_000);
        let rows: Vec<Vec<String>> = result
            .points
            .iter()
            .map(|pt| {
                vec![
                    fmt(pt.rate, 2),
                    if pt.completed == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.2} ±{:.2}", pt.mean_latency, 2.0 * pt.stderr)
                    },
                    pt.retries.to_string(),
                    pt.dropped.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("co-sim ablation — uniform per-hop error p = {p} ({reps} reps)"),
            &["inj. rate", "latency ±2se", "retries", "dropped"],
            &rows,
        );
        println!(
            "\nsaturation knee: {} | {:.1} s",
            match result.saturation_knee {
                Some(k) => format!("{k:.2}"),
                None => "none".to_string(),
            },
            started.elapsed().as_secs_f64()
        );
        return;
    }

    // ---- Layer 1: measure the LDPC-CC frame-error curve once. ----
    // The Fig. 10 code family at a moderate Monte-Carlo preset; the curve
    // is the reusable cache every tx-power point interpolates.
    let batch = batch_flag();
    let code = CoupledCode::paper_cc(25, 20, 0xCC19);
    let target = CoupledBerTarget::new(&code, WindowDecoder::new(6, 30)).with_batch(batch);
    let opts = BerSimOptions {
        target_errors: u64::MAX, // FER wants fixed frame counts, not a bit-error stop
        max_frames: 120,
        min_frames: 120,
        seed: 0xC051,
    };
    let grid: Vec<f64> = (0..=6).map(|k| k as f64).collect();
    println!(
        "measuring LDPC-CC FER curve (N=25, W=6, {} frames/point, batch width {batch})…",
        opts.max_frames
    );
    let curve = FerCurve::measure(&target, &grid, &opts);
    let curve_rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|&(e, f)| vec![fmt(e, 1), format!("{f:.3}")])
        .collect();
    print_table(
        "measured frame-error rate",
        &["Eb/N0 dB", "FER"],
        &curve_rows,
    );

    // ---- Layer 2: link budget → per-class Eb/N0 → per-class FER. ----
    let mut configs = Vec::new();
    let mut link_rows = Vec::new();
    for &tx in &TX_POWERS_DBM {
        let mut cfg = SystemConfig::paper_default();
        cfg.link.tx_power_dbm = tx;
        let q = link_class_ebn0(&cfg);
        let model = link_error_model(&cfg, &curve);
        let (edge_p, center_p) = match model {
            LinkErrorModel::EdgeCenter { edge_p, center_p } => (edge_p, center_p),
            _ => unreachable!("link_error_model builds EdgeCenter"),
        };
        link_rows.push(vec![
            fmt(tx, 1),
            fmt(q.center_db, 1),
            fmt(q.edge_db, 1),
            format!("{center_p:.3}"),
            format!("{edge_p:.3}"),
        ]);
        configs.push((tx, model));
    }
    print_table(
        "link classes vs tx power (center = ahead link, edge = worst-case diagonal)",
        &[
            "tx dBm",
            "center Eb/N0",
            "edge Eb/N0",
            "center FER",
            "edge FER",
        ],
        &link_rows,
    );

    // ---- Layer 3: inject per-class FER into the DES, sweep rates. ----
    let sweeps: Vec<SweepResult> = configs
        .iter()
        .map(|&(_, model)| {
            run_sweep(
                FaultConfig {
                    model,
                    ..FaultConfig::off()
                },
                &rates,
                reps,
                4_000,
            )
        })
        .collect();

    let mut headers: Vec<String> = vec!["inj. rate".to_string()];
    for &(tx, _) in &configs {
        headers.push(format!("{tx:.0} dBm lat"));
        headers.push("retries".to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = vec![fmt(rate, 2)];
        for s in &sweeps {
            let p = s.points[ri];
            row.push(if p.completed == 0 {
                "-".to_string()
            } else {
                format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr)
            });
            row.push(p.retries.to_string());
        }
        rows.push(row);
    }
    print_table(
        &format!("latency / cycles vs offered rate vs link quality (4x4x4 3D mesh, {reps} reps)"),
        &header_refs,
        &rows,
    );

    println!("\nsaturation knee / total retries / total drops per tx power:");
    for (&(tx, _), s) in configs.iter().zip(&sweeps) {
        let retries: u64 = s.points.iter().map(|p| p.retries).sum();
        let dropped: usize = s.points.iter().map(|p| p.dropped).sum();
        println!(
            "  {tx:6.1} dBm: knee {} | {retries:8} retries | {dropped:5} drops",
            match s.saturation_knee {
                Some(k) => format!("{k:.2}"),
                None => format!(">{:.2}", rates.last().copied().unwrap_or(f64::NAN)),
            }
        );
    }
    println!(
        "\nthe knee walks left and retry traffic grows as tx power drops — graceful,\n\
         not cliff-edge, degradation; 0 dBm reproduces the fault-free Fig. 8 run\n\
         bit-for-bit. {:.1} s total",
        started.elapsed().as_secs_f64()
    );
}
