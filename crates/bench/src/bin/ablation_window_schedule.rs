//! Ablation: window-decoder message-passing schedule (ref \[19\]) — restart
//! per position versus retained messages, at equal window size.

use wi_bench::{fmt, print_table};
use wi_ldpc::ber::{simulate_ber, BerSimOptions, CoupledBerTarget};
use wi_ldpc::window::{CoupledCode, WindowDecoder};

fn main() {
    let code = CoupledCode::paper_cc(25, 20, 0xAB1);
    let restart_target = CoupledBerTarget::new(&code, WindowDecoder::new(8, 50));
    let reuse_target = CoupledBerTarget::new(&code, WindowDecoder::with_reuse(8, 10));
    let opts = BerSimOptions {
        target_errors: 100,
        max_frames: 80,
        min_frames: 40,
        seed: 0xAB1,
    };
    let mut rows = Vec::new();
    for ebn0 in [2.5, 3.0, 3.5, 4.0] {
        let restart = simulate_ber(&restart_target, ebn0, &opts);
        let reuse = simulate_ber(&reuse_target, ebn0, &opts);
        rows.push(vec![
            fmt(ebn0, 1),
            format!("{:.2e}", restart.ber),
            format!("{:.2e}", reuse.ber),
        ]);
    }
    print_table(
        "ablation — window schedule, N=25 W=8 BER",
        &["Eb/N0 / dB", "restart (50 it)", "reuse (10 it/pos)"],
        &rows,
    );
    println!("\nfinding: on these short-cycle lifted graphs, restarting BP per window");
    println!("position outperforms retained messages, which entrench early errors.");
}
