//! Hybrid wired+wireless "board of boards" latency sweep — the Fig. 8
//! companion the paper's §I/§II vision implies but never plots: several
//! wired board meshes chained by wireless express links instead of one
//! monolithic wired mesh.
//!
//! Three interconnects of identical module count are compared:
//!
//! * **monolithic** — one wired 3D mesh spanning all boards (the
//!   "backplane of wires" strawman),
//! * **hybrid r=1** — per-board wired meshes with a single radio site
//!   per board gap ([`wi_noc::icdb::HybridBoards`]),
//! * **hybrid r=k** — the same with `--radios k` sites per gap.
//!
//! Each prints its analytic zero-load latency and link census; with
//! `--des` every rate is cross-validated by a multi-replication DES
//! sweep over the materialized route table
//! ([`wi_noc::des::sweep_engine`]), plus the measured saturation knee.
//! Cross-board routes ride the express links (wired to the nearest
//! radio, one radio hop per gap, wired to the destination), so far
//! pairs get *shorter* than Manhattan while straddling neighbors pay a
//! detour — the trade the table quantifies.
//!
//! `--routing <dor|o1turn|valiant[:k]|rlb[:k]|adaptive>` re-routes the
//! monolithic strawman only (implies `--des`): the hybrids' tables are
//! structural, and the adaptive candidate scan cannot cross a board gap
//! (radio links are not unit-distance mesh steps), so the flag answers
//! "does a smarter wired mesh close the gap to the hybrids?".

use std::sync::Arc;
use wi_bench::{
    die, flag_value, fmt, fmt_opt, has_flag, help_flag, print_table, rates_flag, reps_flag,
    routing_flag, traffic_flag, RoutingArg,
};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::traffic::TrafficPattern;
use wi_noc::des::{sweep_engine, DesConfig, Engine, SweepConfig, SweepResult};
use wi_noc::icdb::HybridBoards;
use wi_noc::routing::{RouteTable, RoutingKind};
use wi_noc::topology::Topology;

const USAGE: &str = "\
fig8_hybrid — hybrid wired+wireless board-of-boards latency sweep

USAGE:
    fig8_hybrid [FLAGS]

FLAGS:
    --boards <b>         boards chained along x (default 2)
    --dims <x,y,z>       per-board wired mesh dimensions (default 4,4,4)
    --radios <k>         radio sites per board gap in the `hybrid r=k`
                         column (default 2; the r=1 column is always shown)
    --des                cross-validate every printed rate with the
                         discrete-event simulator (adds a `DES +-2se`
                         column per interconnect plus the measured
                         saturation knee)
    --traffic <kind>     DES traffic pattern: uniform (default),
                         hotspot[:node:frac], transpose, bitrev, neighbor
    --routing <policy>   routing of the *monolithic* column only (implies
                         --des): dor, o1turn, valiant[:k], rlb[:k],
                         adaptive
    --reps <k>           DES replications per rate (default 3)
    --rates <csv>        override the injection-rate grid, e.g.
                         0.05,0.15,0.25 (the CI smoke grid)
    --help, -h           print this help

Hybrid routing is fixed: dimension-order inside boards, nearest-radio
express chains across them (the adaptive scan cannot cross a board gap,
so --routing re-routes the wired strawman only — the comparison the flag
exists for). Exact recipes: docs/REPRODUCING.md.";

/// `--dims x,y,z` (default `[4, 4, 4]`).
fn dims_flag() -> [usize; 3] {
    match flag_value("--dims") {
        Some(s) => {
            let parts: Vec<usize> = s
                .split(',')
                .map(|p| p.trim().parse().ok())
                .collect::<Option<_>>()
                .unwrap_or_default();
            match parts[..] {
                [x, y, z] if x > 0 && y > 0 && z > 0 => [x, y, z],
                _ => die(&format!("--dims takes x,y,z positive integers, got {s:?}")),
            }
        }
        None => [4, 4, 4],
    }
}

/// A positive-integer flag with a default.
fn count_flag(flag: &str, default: usize) -> usize {
    match flag_value(flag) {
        Some(s) => match s.parse() {
            Ok(v) if v > 0 => v,
            _ => die(&format!("{flag} takes a positive integer, got {s:?}")),
        },
        None => default,
    }
}

fn main() {
    help_flag(USAGE);
    let boards = count_flag("--boards", 2);
    let dims = dims_flag();
    let radios = count_flag("--radios", 2);
    let [nx, ny, nz] = dims;
    if radios > ny {
        die(&format!("--radios {radios} exceeds the board depth y={ny}"));
    }
    let traffic = traffic_flag();
    let reps = reps_flag(3);
    let mono_policy = match routing_flag() {
        Some(RoutingArg::Policy(k)) => Some(k),
        Some(RoutingArg::All) => die("--routing all is a fig8a/fig8b mode; here pass one policy \
             (it re-routes the monolithic column)"),
        None => None,
    };
    let des = has_flag("--des") || mono_policy.is_some();

    // The three interconnects, all with boards·nx·ny·nz modules. Only the
    // monolithic mesh honours --routing; the hybrids' board-of-boards
    // tables are structural.
    let mono_policy = mono_policy.unwrap_or(RoutingKind::DimensionOrder);
    let monolithic = Topology::mesh3d(boards * nx, ny, nz);
    let mono_table = RouteTable::with_policy(&monolithic, mono_policy);
    let hybrid1 = HybridBoards::with_radio_count(boards, dims, 1);
    let hybridk = HybridBoards::with_radio_count(boards, dims, radios);
    let names = [
        "monolithic".to_string(),
        "hybrid r=1".to_string(),
        format!("hybrid r={radios}"),
    ];
    let cases: Vec<(&str, &Topology, RouteTable)> = vec![
        (&names[0], &monolithic, mono_table),
        (&names[1], hybrid1.topology(), hybrid1.route_table()),
        (&names[2], hybridk.topology(), hybridk.route_table()),
    ];

    let params = RouterParams::default();
    let models: Vec<AnalyticModel> = cases
        .iter()
        .map(|(_, topo, table)| AnalyticModel::with_table(topo, params, table.clone()))
        .collect();

    // Fine steps below 0.05 resolve the hybrid knees (a handful of radio
    // links carry every cross-board flow, so they saturate far below the
    // wired mesh), coarser steps cover the monolithic knee.
    let rates: Vec<f64> = rates_flag().unwrap_or_else(|| {
        (1..=9)
            .map(|k| 0.005 * k as f64)
            .chain((1..=12).map(|k| 0.05 * k as f64))
            .collect()
    });

    let sweeps: Option<Vec<SweepResult>> = des.then(|| {
        cases
            .iter()
            .enumerate()
            .map(|(mi, (_, topo, table))| {
                let proto = Engine::with_table(topo, Arc::new(table.clone()));
                let cfg = SweepConfig::new(
                    rates.clone(),
                    reps,
                    DesConfig {
                        traffic,
                        // Case 0 is the monolithic mesh; the hybrids keep
                        // their structural dimension-order tables.
                        routing: if mi == 0 {
                            mono_policy
                        } else {
                            RoutingKind::DimensionOrder
                        },
                        warmup_packets: 1_000,
                        measured_packets: 10_000,
                        max_events: 5_000_000,
                        ..DesConfig::default()
                    },
                );
                sweep_engine(&proto, &cfg)
            })
            .collect()
    });

    let mut headers: Vec<&str> = vec!["inj. rate"];
    for (name, _, _) in &cases {
        headers.push(name);
        if des {
            headers.push("DES ±2se");
        }
    }
    let mut rows = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        let mut row = vec![fmt(rate, 3)];
        for (mi, m) in models.iter().enumerate() {
            row.push(fmt_opt(m.mean_latency(rate), 2));
            if let Some(sweeps) = &sweeps {
                let p = sweeps[mi].points[ri];
                row.push(if p.completed == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr)
                });
            }
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "hybrid board-of-boards — packet latency / cycles ({} modules: {boards} boards of {nx}x{ny}x{nz}, {} traffic)",
            monolithic.num_modules(),
            traffic.name()
        ),
        &headers,
        &rows,
    );

    println!("\nper-interconnect structure and zero-load latency:");
    for ((name, _, _), m) in cases.iter().zip(&models) {
        let (wired, radio) = if name.starts_with("hybrid") {
            let h = if *name == names[1] {
                &hybrid1
            } else {
                &hybridk
            };
            (h.num_wired_links(), h.num_radio_links())
        } else {
            (monolithic.num_links(), 0)
        };
        let knee = sweeps
            .as_ref()
            .map(|s| {
                let mi = cases.iter().position(|(n, _, _)| n == name).unwrap();
                format!(", DES knee {}", fmt_opt(s[mi].saturation_knee, 2))
            })
            .unwrap_or_default();
        println!(
            "  {name:12}: {wired:4} wired + {radio:2} radio links, {:5.1} cycles zero-load{knee}",
            m.zero_load_latency()
        );
    }
    println!("\nshape: express radio hops shorten far cross-board routes below their");
    println!("Manhattan distance while straddling neighbors detour via a radio site;");
    println!("more radio sites per gap relieve the radio bottleneck at load.");
}
