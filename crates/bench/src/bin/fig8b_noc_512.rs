//! Fig. 8(b): average packet latency versus injection rate at 512 modules —
//! 32×16 2D mesh vs 8×8×8 3D mesh; the latency gap widens with scale.

use wi_bench::{fmt, fmt_opt, print_table};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::topology::Topology;

fn main() {
    let params = RouterParams::default();
    let mesh2d_512 = Topology::mesh2d(32, 16);
    let mesh3d_512 = Topology::mesh3d(8, 8, 8);
    let mesh2d_64 = Topology::mesh2d(8, 8);
    let mesh3d_64 = Topology::mesh3d(4, 4, 4);

    let m2_512 = AnalyticModel::new(&mesh2d_512, params);
    let m3_512 = AnalyticModel::new(&mesh3d_512, params);
    let m2_64 = AnalyticModel::new(&mesh2d_64, params);
    let m3_64 = AnalyticModel::new(&mesh3d_64, params);

    let rates: Vec<f64> = (1..=14).map(|k| 0.05 * k as f64).collect();
    let rows: Vec<Vec<String>> = rates
        .iter()
        .map(|&r| {
            vec![
                fmt(r, 2),
                fmt_opt(m2_512.mean_latency(r), 2),
                fmt_opt(m3_512.mean_latency(r), 2),
                fmt_opt(m2_64.mean_latency(r), 2),
                fmt_opt(m3_64.mean_latency(r), 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 8b — average packet latency / cycles",
        &[
            "inj. rate",
            "2D 512 mod.",
            "3D 512 mod.",
            "2D 64 mod.",
            "3D 64 mod.",
        ],
        &rows,
    );

    let gap64 = m2_64.zero_load_latency() - m3_64.zero_load_latency();
    let gap512 = m2_512.zero_load_latency() - m3_512.zero_load_latency();
    println!("\nlow-load 2D-3D latency gap: {gap64:.1} cycles at 64 modules,");
    println!(
        "{gap512:.1} cycles at 512 modules — the gap increases significantly (paper's claim)."
    );
}
