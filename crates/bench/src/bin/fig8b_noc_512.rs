//! Fig. 8(b): average packet latency versus injection rate at 512 modules —
//! 32×16 2D mesh vs 8×8×8 3D mesh; the latency gap widens with scale.
//!
//! With `--des`, the 512-module curves get a DES `±2se` column from a
//! multi-replication sweep (the paper has no simulation at this scale —
//! this is the independent check of the analytic claim). `--traffic`,
//! `--reps` and `--rates` work as in `fig8a_noc_64`, as does
//! `--routing <dor|o1turn|valiant[:k]|rlb[:k]|adaptive>` (implies `--des`; the analytic
//! columns stay dimension-order). `--routing all` prints the
//! policy-per-topology saturation-knee summary instead of the latency
//! table — at 512 modules the per-policy route tables are large (the
//! Valiant table is `2k ×` the dimension-order one), so expect this mode
//! to take minutes. The adversarial recovery measured at 64 modules
//! (fig8a doc table) persists at scale: O1TURN lifts the 8×8×8 mesh's
//! transpose/bit-reversal knees above dimension-order's while matching
//! it under uniform load.

use wi_bench::{
    fmt, fmt_opt, has_flag, help_flag, print_table, rates_flag, reps_flag, routing_flag,
    traffic_flag, RoutingArg,
};
use wi_noc::analytic::{AnalyticModel, RouterParams};
use wi_noc::des::traffic::TrafficPattern;
use wi_noc::des::{sweep, sweep_policies, DesConfig, SweepConfig, SweepResult};
use wi_noc::routing::RoutingKind;
use wi_noc::topology::Topology;

const USAGE: &str = "\
fig8b_noc_512 — average packet latency vs injection rate, 512 modules (Fig. 8b)

USAGE:
    fig8b_noc_512 [FLAGS]

FLAGS:
    --des                cross-validate every printed rate with the
                         discrete-event simulator (adds a `DES +-2se`
                         column per topology; minutes at 512 modules)
    --traffic <kind>     DES traffic pattern: uniform (default),
                         hotspot[:node:frac], transpose, bitrev, neighbor
    --routing <policy>   routing policy of the DES sweeps (implies
                         --des): dor, o1turn, valiant[:k], rlb[:k],
                         adaptive;
                         `all` prints the policy-per-topology knee
                         summary instead of the latency table (minutes:
                         the 512-module Valiant table is large)
    --reps <k>           DES replications per rate (default 3)
    --rates <csv>        override the injection-rate grid, e.g.
                         0.05,0.15,0.25
    --help, -h           print this help

The analytic columns are always dimension-order; non-default routing only
affects the simulator. Exact recipes: docs/REPRODUCING.md.";

fn main() {
    help_flag(USAGE);
    let params = RouterParams::default();
    let mesh2d_512 = Topology::mesh2d(32, 16);
    let mesh3d_512 = Topology::mesh3d(8, 8, 8);
    let mesh2d_64 = Topology::mesh2d(8, 8);
    let mesh3d_64 = Topology::mesh3d(4, 4, 4);

    let m2_512 = AnalyticModel::new(&mesh2d_512, params);
    let m3_512 = AnalyticModel::new(&mesh3d_512, params);
    let m2_64 = AnalyticModel::new(&mesh2d_64, params);
    let m3_64 = AnalyticModel::new(&mesh3d_64, params);

    let traffic = traffic_flag();
    let reps = reps_flag(3);
    let routing = routing_flag();
    let rates: Vec<f64> =
        rates_flag().unwrap_or_else(|| (1..=14).map(|k| 0.05 * k as f64).collect());

    // DES sweep template; the measurement window must scale with the
    // module count: warmup and measured packets are *global*, so a fixed
    // budget at 512 modules would sample only the injection transient and
    // understate queueing near saturation.
    let sweep_cfg = |topo: &Topology, routing: RoutingKind| {
        let n = topo.num_modules();
        SweepConfig::new(
            rates.clone(),
            reps,
            DesConfig {
                traffic,
                routing,
                warmup_packets: 20 * n,
                measured_packets: 100 * n,
                max_events: 10_000_000,
                ..DesConfig::default()
            },
        )
    };

    if let Some(RoutingArg::All) = routing {
        let max_rate = rates.iter().cloned().fold(f64::NAN, f64::max);
        let policies = [
            RoutingKind::DimensionOrder,
            RoutingKind::O1Turn,
            RoutingKind::Valiant { choices: 8 },
            RoutingKind::RlbValiant { choices: 8 },
            RoutingKind::Adaptive,
        ];
        let headers: Vec<&str> = std::iter::once("topology")
            .chain(policies.iter().map(|p| p.name()))
            .collect();
        let rows: Vec<Vec<String>> = [("2D 512 mod.", &mesh2d_512), ("3D 512 mod.", &mesh3d_512)]
            .iter()
            .map(|(name, topo)| {
                let mut row = vec![name.to_string()];
                let cfg = sweep_cfg(topo, RoutingKind::DimensionOrder);
                for (_, result) in sweep_policies(topo, &cfg, &policies) {
                    row.push(match result.saturation_knee {
                        Some(k) => fmt(k, 2),
                        None => format!(">{max_rate:.2}"),
                    });
                }
                row
            })
            .collect();
        print_table(
            &format!(
                "Fig. 8b — DES saturation knees at 512 modules, {} traffic ({reps} reps)",
                traffic.name()
            ),
            &headers,
            &rows,
        );
        return;
    }
    let policy = match routing {
        Some(RoutingArg::Policy(k)) => k,
        _ => RoutingKind::DimensionOrder,
    };
    let des = has_flag("--des") || routing.is_some();

    let sweeps: Option<Vec<SweepResult>> = des.then(|| {
        [&mesh2d_512, &mesh3d_512]
            .iter()
            .map(|topo| sweep(topo, &sweep_cfg(topo, policy)))
            .collect()
    });

    let mut headers = vec!["inj. rate", "2D 512 mod."];
    if des {
        headers.push("DES ±2se");
    }
    headers.push("3D 512 mod.");
    if des {
        headers.push("DES ±2se");
    }
    headers.extend(["2D 64 mod.", "3D 64 mod."]);

    let rows: Vec<Vec<String>> = rates
        .iter()
        .enumerate()
        .map(|(ri, &r)| {
            let mut row = vec![fmt(r, 2)];
            for (mi, m) in [&m2_512, &m3_512].iter().enumerate() {
                row.push(fmt_opt(m.mean_latency(r), 2));
                if let Some(sweeps) = &sweeps {
                    let p = sweeps[mi].points[ri];
                    row.push(if p.completed == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.2} ±{:.2}", p.mean_latency, 2.0 * p.stderr)
                    });
                }
            }
            row.push(fmt_opt(m2_64.mean_latency(r), 2));
            row.push(fmt_opt(m3_64.mean_latency(r), 2));
            row
        })
        .collect();
    print_table("Fig. 8b — average packet latency / cycles", &headers, &rows);

    if let Some(sweeps) = &sweeps {
        println!(
            "\nDES saturation knees (512 modules, {} traffic, {} routing): 2D {}, 3D {} flits/cycle/module",
            traffic.name(),
            policy.name(),
            fmt_opt(sweeps[0].saturation_knee, 2),
            fmt_opt(sweeps[1].saturation_knee, 2)
        );
    }

    let gap64 = m2_64.zero_load_latency() - m3_64.zero_load_latency();
    let gap512 = m2_512.zero_load_latency() - m3_512.zero_load_latency();
    println!("\nlow-load 2D-3D latency gap: {gap64:.1} cycles at 64 modules,");
    println!(
        "{gap512:.1} cycles at 512 modules — the gap increases significantly (paper's claim)."
    );
}
