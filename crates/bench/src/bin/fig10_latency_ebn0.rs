//! Fig. 10: required Eb/N0 to reach the target BER as a function of the
//! structural decoding latency — LDPC-CC (N ∈ {25, 40, 60}, W sweeps)
//! versus the LDPC block codes they are derived from.
//!
//! Default preset targets BER 1e-3 with moderate frame counts (minutes);
//! `--full` targets the paper's 1e-5 (much slower); `--quick` is the CI
//! smoke preset (BER 1e-2, seconds). `--minsum` decodes
//! with normalized min-sum (α = 0.8) instead of sum-product — the
//! hardware-faithful variant, several times faster per iteration.
//! `--sum-product-table` keeps sum-product accuracy (within 0.05 dB,
//! pinned by `wi-ldpc/tests/phi_table.rs`) while replacing the
//! `tanh`/`atanh` inner loop with the φ lookup table — the recommended
//! preset for fast high-fidelity sweeps.
//!
//! `--search <bisect|concurrent|paired>` selects the required-Eb/N0
//! search strategy (`wi_ldpc::ber::SearchStrategy`): `bisect` is the
//! pre-redesign serial ladder, retained bit-identical at fixed seed;
//! `concurrent` probes several Eb/N0 points per round and prunes each by
//! confidence interval; `paired` walks a fixed grid with common random
//! numbers and log-linearly interpolates. The two fast strategies are
//! statistically equivalent to the ladder, not bit-identical — measured
//! speedups are recorded in `docs/REPRODUCING.md`.
//!
//! Absolute dB values are implementation-dependent; the reproduced
//! *shape* is: required Eb/N0 falls with window size and lifting factor,
//! and the spatially coupled codes beat the block codes as latency grows.
//!
//! Monte-Carlo frames are fanned out over all available cores with
//! results bit-identical to a serial run (see `wi_ldpc::ber`).

use std::path::PathBuf;
use std::time::Instant;
use wi_bench::{
    batch_flag, die, flag_value, fmt, forbid_both, has_flag, help_flag, print_table, search_flag,
};
use wi_ldpc::ber::{
    search_required_ebn0, BerSimOptions, BerTarget, BlockBerTarget, CachedBerTarget,
    CoupledBerTarget, SearchConfig, SearchOutcome, SearchReport,
};
use wi_ldpc::decoder::{BpConfig, CheckRule};
use wi_ldpc::window::{CoupledCode, WindowDecoder};
use wi_ldpc::LdpcCode;
use wi_sweep::{block_target_hash, coupled_target_hash, StoreFrameCache};

const USAGE: &str = "\
fig10_latency_ebn0 — required Eb/N0 vs structural decoding latency (Fig. 10)

USAGE:
    fig10_latency_ebn0 [FLAGS]

FLAGS:
    --full               target the paper's BER 1e-5 instead of the 1e-3
                         runtime preset (overnight run)
    --quick              reduced smoke preset: BER 1e-2, two code families,
                         coarse bisection -- finishes in under a minute
                         (used by CI; numbers are indicative only)
    --minsum             decode with normalized min-sum (alpha = 0.8) --
                         the hardware-faithful approximation, fastest,
                         costs a fraction of a dB
    --sum-product-table  decode with the phi-table sum-product kernel --
                         sum-product accuracy (within 0.05 dB) without
                         the tanh/atanh inner loop; recommended for fast
                         high-fidelity sweeps (overrides --minsum)
    --search <strategy>  required-Eb/N0 search strategy:
                           bisect      serial bisection ladder (default;
                                       bit-identical to the pre-redesign
                                       search at fixed seed)
                           concurrent  several probes per round, each
                                       pruned early by confidence interval
                           paired      fixed grid + common random numbers
                                       + log-linear interpolation
                         concurrent/paired are statistically equivalent to
                         bisect, not bit-identical, and markedly faster
    --batch <width>      inter-frame decode batch width: how many Monte-
                         Carlo frames each worker decodes in lockstep
                         through the vectorized lane kernels (1, 2, 4 or
                         8; default 8). Bit-identical per frame at every
                         width -- a pure throughput knob (1 = the scalar
                         decoders)
    --store <dir>        persist every (seed, frame, Eb/N0) frame
                         evaluation in a wi_sweep result-store directory
                         and reuse any already stored -- a re-run of the
                         same preset is served almost entirely from the
                         cache with bit-identical output (frame values
                         are pure; see the Sweep orchestration section
                         of docs/ARCHITECTURE.md)
    --help, -h           print this help

Monte-Carlo frames are automatically fanned out over all available CPU
cores; results are bit-identical to a serial run at any thread count for
every strategy. Exact CLI recipes, expected runtimes and measured search
speedups: docs/REPRODUCING.md.";

/// Formats a search outcome for the table: the sides of the bracket stay
/// distinguishable instead of collapsing to "n/a".
fn outcome_cell(outcome: SearchOutcome, search: &SearchConfig) -> String {
    match outcome {
        SearchOutcome::Found(v) => fmt(v, 2),
        SearchOutcome::BelowLo => format!("<{:.2}", search.lo_db),
        SearchOutcome::AboveHi => format!(">{:.2}", search.hi_db),
        SearchOutcome::Unresolved { best } => format!("~{best:.2}"),
    }
}

/// Runs one required-Eb/N0 search, through the store-backed frame cache
/// when `--store` was given, accumulating hit/miss counters.
fn searched(
    target: &dyn BerTarget,
    target_hash: u64,
    store_dir: Option<&PathBuf>,
    target_ber: f64,
    opts: &BerSimOptions,
    search: &SearchConfig,
    counters: &mut (u64, u64),
) -> SearchReport {
    match store_dir {
        Some(dir) => {
            let cache = StoreFrameCache::open(dir, target_hash)
                .unwrap_or_else(|e| die(&format!("--store {}: {e}", dir.display())));
            let cached = CachedBerTarget::new(target, &cache);
            let report = search_required_ebn0(&cached, target_ber, opts, search);
            let (h, m) = cache.counters();
            counters.0 += h;
            counters.1 += m;
            report
        }
        None => search_required_ebn0(target, target_ber, opts, search),
    }
}

fn main() {
    help_flag(USAGE);
    forbid_both("--full", "--quick");
    let full = has_flag("--full");
    let quick = has_flag("--quick");
    let check_rule = if has_flag("--sum-product-table") {
        CheckRule::sum_product_table()
    } else if has_flag("--minsum") {
        CheckRule::min_sum()
    } else {
        CheckRule::SumProduct
    };
    let target_ber = if full {
        1e-5
    } else if quick {
        1e-2
    } else {
        1e-3
    };
    // Window decoding fails in bursts (a wrong pinned block corrupts its
    // successors), so the error budget must cover several independent
    // failure events or the estimate degenerates to a frame-error rate.
    // The default preset (~2-4 burst events per estimate) sweeps all 19
    // points in roughly half an hour; --full is an overnight run; --quick
    // is a CI smoke preset that finishes in well under a minute.
    let opts = BerSimOptions {
        target_errors: if full { 600 } else { 120 },
        max_frames: if full {
            20_000
        } else if quick {
            60
        } else {
            150
        },
        min_frames: if quick { 20 } else { 30 },
        seed: 0xF10,
    };
    let batch = batch_flag();
    let term_length = 20;
    let iters = 50;
    let search = SearchConfig {
        strategy: search_flag(),
        lo_db: 0.5,
        hi_db: 8.0,
        tol_db: if quick { 0.25 } else { 0.1 },
        // Paired grid: ~1 dB spacing resolves the waterfall after
        // log-linear interpolation; the quick preset stays coarser.
        grid_points: if quick { 7 } else { 9 },
        ..SearchConfig::default()
    };

    println!("Fig. 10 — required Eb/N0 for BER {target_ber:.0e} vs structural latency");
    println!("(paper targets 1e-5; default preset 1e-3 for runtime, --full for 1e-5)");
    println!(
        "decoder: {} | {} worker thread(s) | batch width {batch}",
        match check_rule {
            CheckRule::SumProduct => "exact sum-product".to_string(),
            CheckRule::SumProductTable { bits } => {
                format!("table sum-product (phi table, {bits} bits)")
            }
            CheckRule::MinSum { alpha } => format!("normalized min-sum (alpha = {alpha})"),
        },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    println!(
        "search: {} over [{}, {}] dB",
        search.strategy.name(),
        search.lo_db,
        search.hi_db
    );

    let store_dir = flag_value("--store").map(PathBuf::from);
    if let Some(dir) = &store_dir {
        println!(
            "frame store: {} (pure frame evaluations cached)",
            dir.display()
        );
    }

    let started = Instant::now();
    let mut probes = 0u64;
    let mut frames = 0u64;
    let mut counters = (0u64, 0u64);
    let mut rows = Vec::new();
    let cc_sweeps: Vec<(usize, Vec<usize>)> = if quick {
        vec![(25, vec![4, 6])]
    } else {
        vec![
            (25, (3..=8).collect()),
            (40, (3..=8).collect()),
            (60, (4..=6).collect()),
        ]
    };
    for (n, windows) in &cc_sweeps {
        let code = CoupledCode::paper_cc(*n, term_length, 0xCC00 + *n as u64);
        for &w in windows {
            let wd = WindowDecoder::new(w, iters).with_rule(check_rule);
            let target = CoupledBerTarget::new(&code, wd).with_batch(batch);
            let report = searched(
                &target,
                coupled_target_hash(*n, w, iters, &check_rule),
                store_dir.as_ref(),
                target_ber,
                &opts,
                &search,
                &mut counters,
            );
            probes += report.probes;
            frames += report.frames;
            rows.push(vec![
                format!("LDPC-CC N={n}"),
                w.to_string(),
                fmt(code.window_latency_bits(w), 0),
                outcome_cell(report.outcome, &search),
            ]);
        }
    }
    let blocks: &[usize] = if quick {
        &[50, 100]
    } else {
        &[50, 100, 200, 400]
    };
    for &n in blocks {
        let code = LdpcCode::paper_block(n, 0xBC00 + n as u64);
        let config = BpConfig {
            max_iterations: iters,
            check_rule,
        };
        let target = BlockBerTarget::new(&code, config, 0.5).with_batch(batch);
        let report = searched(
            &target,
            block_target_hash(n, iters, &check_rule),
            store_dir.as_ref(),
            target_ber,
            &opts,
            &search,
            &mut counters,
        );
        probes += report.probes;
        frames += report.frames;
        rows.push(vec![
            format!("LDPC-BC N={n}"),
            "-".into(),
            fmt(n as f64, 0),
            outcome_cell(report.outcome, &search),
        ]);
    }
    print_table(
        "required Eb/N0 / dB",
        &["code", "W", "latency/info bits", "req. Eb/N0"],
        &rows,
    );
    println!(
        "\nsearch phase: {} strategy | {probes} BER probes | {frames} frames | {:.1} s",
        search.strategy.name(),
        started.elapsed().as_secs_f64()
    );
    if store_dir.is_some() {
        let (hits, misses) = counters;
        let total = hits + misses;
        println!(
            "frame store: {hits} hits / {misses} misses ({:.0}% served from store)",
            if total == 0 {
                0.0
            } else {
                100.0 * hits as f64 / total as f64
            }
        );
    }
    println!("\npaper anchor: at Eb/N0 = 3 dB the LDPC-CC needs 200 info bits of latency");
    println!("while the LDPC-BC needs 400 — a 200-bit latency gain from coupling.");
}
