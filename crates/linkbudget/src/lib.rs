//! Link budget engine for 200 GHz-band board-to-board wireless interconnects.
//!
//! Section II.B of the DATE'13 paper assembles the link budget of Table I
//! (noise figure, pathloss, array gains, Butler-matrix inaccuracy,
//! polarization mismatch, implementation loss, receiver temperature) and
//! derives the required transmit power as a function of the target SNR at
//! the receiver (Fig. 4) for the two extreme links of the two-board setup:
//! the 100 mm "ahead" link and the 300 mm diagonal link.
//!
//! * [`budget`] — the [`LinkBudget`] ledger with the paper's Table I
//!   presets, required-TX-power / achieved-SNR arithmetic and an itemized
//!   table for regeneration of Table I.
//! * [`datarate`] — Shannon-capacity helpers connecting the budget to the
//!   100 Gbit/s (dual-polarization, 25 GHz) design target.
//!
//! # Example
//!
//! ```
//! use wi_linkbudget::budget::LinkBudget;
//!
//! let shortest = LinkBudget::paper_shortest_link();
//! let p = shortest.required_tx_power_dbm(10.0);
//! // Fig. 4: around -6 dBm at 10 dB SNR for the 100 mm link.
//! assert!(p > -10.0 && p < 0.0);
//! ```

pub mod budget;
pub mod datarate;

pub use budget::{Beamforming, BudgetLine, LinkBudget};
