//! Data-rate helpers connecting the link budget to the paper's 100 Gbit/s
//! design target.
//!
//! §II.B: "In order to obtain wireless connections with data rates up to
//! 100 Gbit/s (using dual polarization) the bandwidth is chosen as 25 GHz" —
//! i.e. 2 bit/s/Hz per polarization, which is exactly the 4-ASK spectral
//! efficiency analyzed in §III.

use serde::{Deserialize, Serialize};
use wi_num::db::db_to_lin;

/// Number of polarizations used by a link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Polarization {
    /// Single polarization.
    Single,
    /// Dual polarization (the paper's 100 Gbit/s assumption).
    #[default]
    Dual,
}

impl Polarization {
    /// Multiplexing factor (1 or 2).
    pub fn streams(&self) -> usize {
        match self {
            Polarization::Single => 1,
            Polarization::Dual => 2,
        }
    }
}

/// Shannon capacity in bit/s for an AWGN channel of `bandwidth_hz` at
/// `snr_db`, across the given number of polarization streams.
///
/// # Panics
///
/// Panics if `bandwidth_hz` is not positive.
pub fn shannon_capacity_bps(bandwidth_hz: f64, snr_db: f64, pol: Polarization) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    pol.streams() as f64 * bandwidth_hz * (1.0 + db_to_lin(snr_db)).log2()
}

/// Achieved data rate in bit/s at spectral efficiency
/// `bits_per_channel_use` (e.g. an information rate from the 1-bit receiver
/// analysis) with one channel use per second per hertz.
pub fn modulated_rate_bps(bandwidth_hz: f64, bits_per_channel_use: f64, pol: Polarization) -> f64 {
    assert!(bandwidth_hz > 0.0, "bandwidth must be positive");
    assert!(bits_per_channel_use >= 0.0, "rate must be non-negative");
    pol.streams() as f64 * bandwidth_hz * bits_per_channel_use
}

/// Minimum SNR (dB) at which the Shannon capacity reaches `rate_bps`.
///
/// # Panics
///
/// Panics if arguments are not positive.
pub fn required_snr_db_for_rate(bandwidth_hz: f64, rate_bps: f64, pol: Polarization) -> f64 {
    assert!(
        bandwidth_hz > 0.0 && rate_bps > 0.0,
        "arguments must be positive"
    );
    let se = rate_bps / (pol.streams() as f64 * bandwidth_hz);
    10.0 * (2f64.powf(se) - 1.0).log10()
}

/// The paper's headline target: 100 Gbit/s.
pub const PAPER_TARGET_RATE_BPS: f64 = 100e9;

/// The paper's chosen bandwidth: 25 GHz.
pub const PAPER_BANDWIDTH_HZ: f64 = 25e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_target_needs_2_bits_per_use() {
        // 100 Gbit/s over dual-pol 25 GHz = 2 bit/s/Hz per polarization.
        let r = modulated_rate_bps(PAPER_BANDWIDTH_HZ, 2.0, Polarization::Dual);
        assert!((r - PAPER_TARGET_RATE_BPS).abs() < 1.0);
    }

    #[test]
    fn shannon_snr_for_100g() {
        // 2 bit/s/Hz needs SNR = 3 (4.77 dB) by Shannon.
        let snr = required_snr_db_for_rate(
            PAPER_BANDWIDTH_HZ,
            PAPER_TARGET_RATE_BPS,
            Polarization::Dual,
        );
        assert!((snr - 4.77).abs() < 0.01, "{snr}");
        // Round trip.
        let c = shannon_capacity_bps(PAPER_BANDWIDTH_HZ, snr, Polarization::Dual);
        assert!((c - PAPER_TARGET_RATE_BPS).abs() / PAPER_TARGET_RATE_BPS < 1e-9);
    }

    #[test]
    fn dual_pol_doubles_rate() {
        let single = shannon_capacity_bps(25e9, 10.0, Polarization::Single);
        let dual = shannon_capacity_bps(25e9, 10.0, Polarization::Dual);
        assert!((dual - 2.0 * single).abs() < 1e-6);
    }

    #[test]
    fn capacity_increases_with_snr() {
        let lo = shannon_capacity_bps(25e9, 0.0, Polarization::Single);
        let hi = shannon_capacity_bps(25e9, 20.0, Polarization::Single);
        assert!(hi > lo);
    }

    #[test]
    fn zero_spectral_efficiency_is_zero_rate() {
        assert_eq!(modulated_rate_bps(25e9, 0.0, Polarization::Dual), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        shannon_capacity_bps(0.0, 10.0, Polarization::Single);
    }
}
