//! The Table I link budget and its Fig. 4 consequences.

use serde::{Deserialize, Serialize};
use wi_channel::pathloss::PathlossModel;
use wi_num::db::thermal_noise_dbm;

/// How the antenna-array weights are realized (§II.B).
///
/// The paper distinguishes full digital beamforming/beamsteering (discrete
/// realization of the beamforming vector, ref \[4\]) from a Butler-matrix
/// network (ref \[5\]) that trades accuracy for complexity. Only worst-case
/// links are assumed to suffer the Butler direction mismatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Beamforming {
    /// Discrete beamforming vector: no additional loss.
    #[default]
    Beamsteering,
    /// Butler matrix with the given direction-mismatch loss in dB.
    ButlerMatrix {
        /// Worst-case direction mismatch loss, dB (Table I: 5 dB).
        inaccuracy_db: f64,
    },
}

impl Beamforming {
    /// The paper's Butler matrix with Table I's 5 dB inaccuracy.
    pub fn paper_butler() -> Self {
        Beamforming::ButlerMatrix { inaccuracy_db: 5.0 }
    }

    /// Loss contributed by the realization, dB.
    pub fn loss_db(&self) -> f64 {
        match *self {
            Beamforming::Beamsteering => 0.0,
            Beamforming::ButlerMatrix { inaccuracy_db } => inaccuracy_db,
        }
    }
}

/// A complete link budget, mirroring Table I of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Receiver noise figure, dB (Table I: 10 dB).
    pub rx_noise_figure_db: f64,
    /// Pathloss of the link, dB.
    pub pathloss_db: f64,
    /// Transmit array gain, dB (Table I: 12 dB for the 4×4 array).
    pub tx_array_gain_db: f64,
    /// Receive array gain, dB (Table I: 12 dB).
    pub rx_array_gain_db: f64,
    /// Beamforming realization (adds the Butler inaccuracy on worst-case
    /// links).
    pub beamforming: Beamforming,
    /// Polarization mismatch, dB (Table I: 3 dB).
    pub polarization_mismatch_db: f64,
    /// Implementation loss, dB (Table I: 5 dB).
    pub implementation_loss_db: f64,
    /// Receiver temperature, kelvin (Table I: 323 K).
    pub rx_temperature_k: f64,
    /// Signal bandwidth, Hz (§II.B: 25 GHz for 100 Gbit/s dual-pol).
    pub bandwidth_hz: f64,
}

impl LinkBudget {
    /// Table I defaults with the pathloss left at the given value.
    ///
    /// # Panics
    ///
    /// Panics if `pathloss_db` is negative.
    pub fn paper_defaults(pathloss_db: f64) -> Self {
        assert!(pathloss_db >= 0.0, "pathloss must be non-negative");
        LinkBudget {
            rx_noise_figure_db: 10.0,
            pathloss_db,
            tx_array_gain_db: 12.0,
            rx_array_gain_db: 12.0,
            beamforming: Beamforming::Beamsteering,
            polarization_mismatch_db: 3.0,
            implementation_loss_db: 5.0,
            rx_temperature_k: 323.0,
            bandwidth_hz: 25e9,
        }
    }

    /// The shortest (ahead) link of the paper: 100 mm, 59.8 dB pathloss.
    pub fn paper_shortest_link() -> Self {
        Self::paper_defaults(59.8)
    }

    /// The longest (diagonal) link: 300 mm, 69.3 dB pathloss, beamsteering.
    pub fn paper_longest_link() -> Self {
        Self::paper_defaults(69.3)
    }

    /// The longest link with the Butler-matrix direction mismatch, the
    /// third curve of Fig. 4.
    pub fn paper_longest_link_butler() -> Self {
        LinkBudget {
            beamforming: Beamforming::paper_butler(),
            ..Self::paper_defaults(69.3)
        }
    }

    /// Builds the budget from a pathloss model and link distance, keeping
    /// all other Table I entries.
    pub fn from_model(model: &PathlossModel, distance_m: f64) -> Self {
        Self::paper_defaults(model.pathloss_db(distance_m))
    }

    /// Thermal noise floor at the receiver input, dBm (`kTB` plus noise
    /// figure).
    pub fn noise_floor_dbm(&self) -> f64 {
        thermal_noise_dbm(self.rx_temperature_k, self.bandwidth_hz) + self.rx_noise_figure_db
    }

    /// Sum of all losses that are not pathloss, dB.
    pub fn miscellaneous_losses_db(&self) -> f64 {
        self.polarization_mismatch_db + self.implementation_loss_db + self.beamforming.loss_db()
    }

    /// Sum of antenna gains, dB.
    pub fn total_gains_db(&self) -> f64 {
        self.tx_array_gain_db + self.rx_array_gain_db
    }

    /// Required transmit power (dBm) to reach `target_snr_db` at the
    /// receiver — the quantity plotted in Fig. 4.
    pub fn required_tx_power_dbm(&self, target_snr_db: f64) -> f64 {
        target_snr_db + self.noise_floor_dbm() + self.pathloss_db + self.miscellaneous_losses_db()
            - self.total_gains_db()
    }

    /// SNR (dB) achieved at the receiver for a given transmit power (dBm).
    /// Inverse of [`LinkBudget::required_tx_power_dbm`].
    pub fn snr_db_at(&self, tx_power_dbm: f64) -> f64 {
        tx_power_dbm - self.noise_floor_dbm() - self.pathloss_db - self.miscellaneous_losses_db()
            + self.total_gains_db()
    }

    /// Link margin (dB) at the given transmit power and required SNR.
    pub fn margin_db(&self, tx_power_dbm: f64, required_snr_db: f64) -> f64 {
        self.snr_db_at(tx_power_dbm) - required_snr_db
    }

    /// Required transmit power across a sweep of target SNRs (one Fig. 4
    /// curve).
    pub fn tx_power_sweep(&self, snrs_db: &[f64]) -> Vec<f64> {
        snrs_db
            .iter()
            .map(|&s| self.required_tx_power_dbm(s))
            .collect()
    }

    /// Itemized ledger reproducing Table I.
    pub fn table(&self) -> Vec<BudgetLine> {
        vec![
            BudgetLine::new("RX noise figure", "dB", self.rx_noise_figure_db),
            BudgetLine::new("Path loss", "dB", self.pathloss_db),
            BudgetLine::new("Array gain (TX)", "dB", self.tx_array_gain_db),
            BudgetLine::new("Array gain (RX)", "dB", self.rx_array_gain_db),
            BudgetLine::new("Butler matrix inaccuracy", "dB", self.beamforming.loss_db()),
            BudgetLine::new("Polarization mismatch", "dB", self.polarization_mismatch_db),
            BudgetLine::new("Implementation loss", "dB", self.implementation_loss_db),
            BudgetLine::new("RX temperature", "K", self.rx_temperature_k),
            BudgetLine::new("Bandwidth", "GHz", self.bandwidth_hz / 1e9),
            BudgetLine::new("Noise floor (kTB + NF)", "dBm", self.noise_floor_dbm()),
        ]
    }
}

/// One line of the Table I ledger.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BudgetLine {
    /// Parameter name.
    pub name: String,
    /// Unit string.
    pub unit: String,
    /// Numeric value.
    pub value: f64,
}

impl BudgetLine {
    fn new(name: &str, unit: &str, value: f64) -> Self {
        BudgetLine {
            name: name.to_string(),
            unit: unit.to_string(),
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_floor_matches_ktb_plus_nf() {
        let b = LinkBudget::paper_shortest_link();
        // kTB(323 K, 25 GHz) ≈ −69.6 dBm, +10 dB NF → ≈ −59.6 dBm.
        assert!(
            (b.noise_floor_dbm() + 59.6).abs() < 0.2,
            "{}",
            b.noise_floor_dbm()
        );
    }

    #[test]
    fn fig4_shortest_link_anchor() {
        // At SNR = 0 dB: −59.6 + 59.8 + 8 − 24 ≈ −15.8 dBm.
        let b = LinkBudget::paper_shortest_link();
        let p = b.required_tx_power_dbm(0.0);
        assert!((p + 15.8).abs() < 0.3, "P_TX(0 dB) = {p}");
    }

    #[test]
    fn fig4_curve_orderings() {
        // At every SNR: shortest < longest < longest-with-Butler, offset by
        // exactly the pathloss delta (9.5 dB) and the Butler loss (5 dB).
        let s = LinkBudget::paper_shortest_link();
        let l = LinkBudget::paper_longest_link();
        let lb = LinkBudget::paper_longest_link_butler();
        for snr in [0.0, 10.0, 25.0, 35.0] {
            let (ps, pl, plb) = (
                s.required_tx_power_dbm(snr),
                l.required_tx_power_dbm(snr),
                lb.required_tx_power_dbm(snr),
            );
            assert!((pl - ps - 9.5).abs() < 1e-9);
            assert!((plb - pl - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig4_slope_is_unity() {
        let b = LinkBudget::paper_longest_link();
        let p0 = b.required_tx_power_dbm(0.0);
        let p35 = b.required_tx_power_dbm(35.0);
        assert!((p35 - p0 - 35.0).abs() < 1e-12);
    }

    #[test]
    fn snr_inverts_tx_power() {
        let b = LinkBudget::paper_longest_link_butler();
        for snr in [-3.0, 7.0, 22.0] {
            let p = b.required_tx_power_dbm(snr);
            assert!((b.snr_db_at(p) - snr).abs() < 1e-12);
        }
    }

    #[test]
    fn margin_sign_convention() {
        let b = LinkBudget::paper_shortest_link();
        let p = b.required_tx_power_dbm(15.0);
        assert!(b.margin_db(p + 3.0, 15.0) > 2.99);
        assert!(b.margin_db(p - 3.0, 15.0) < -2.99);
    }

    #[test]
    fn table_matches_paper_values() {
        let t = LinkBudget::paper_longest_link_butler().table();
        let get = |name: &str| {
            t.iter()
                .find(|l| l.name == name)
                .unwrap_or_else(|| panic!("missing line {name}"))
                .value
        };
        assert_eq!(get("RX noise figure"), 10.0);
        assert_eq!(get("Path loss"), 69.3);
        assert_eq!(get("Array gain (TX)"), 12.0);
        assert_eq!(get("Butler matrix inaccuracy"), 5.0);
        assert_eq!(get("Polarization mismatch"), 3.0);
        assert_eq!(get("Implementation loss"), 5.0);
        assert_eq!(get("RX temperature"), 323.0);
    }

    #[test]
    fn from_model_uses_model_pathloss() {
        let model = PathlossModel::paper_free_space();
        let b = LinkBudget::from_model(&model, 0.1);
        assert!((b.pathloss_db - 59.8).abs() < 0.1);
    }

    #[test]
    fn sweep_matches_pointwise() {
        let b = LinkBudget::paper_shortest_link();
        let snrs = [0.0, 5.0, 10.0];
        let sweep = b.tx_power_sweep(&snrs);
        for (i, &snr) in snrs.iter().enumerate() {
            assert_eq!(sweep[i], b.required_tx_power_dbm(snr));
        }
    }

    #[test]
    #[should_panic(expected = "pathloss must be non-negative")]
    fn negative_pathloss_panics() {
        LinkBudget::paper_defaults(-1.0);
    }
}
