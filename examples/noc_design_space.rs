//! NoC design-space exploration for a chip stack (§IV).
//!
//! Compares candidate topologies for a 64-core and a 512-core stack with
//! the analytic queueing model, cross-validating one point against the
//! discrete-event simulator — the workflow ref \[14\] was built for.
//!
//! Run with: `cargo run --release --example noc_design_space`

use wireless_interconnect::noc::analytic::{AnalyticModel, RouterParams};
use wireless_interconnect::noc::des::{simulate, DesConfig};
use wireless_interconnect::noc::topology::Topology;

fn main() {
    let params = RouterParams::default();

    println!("64-core stack candidates:");
    let candidates64 = [
        ("8x8 2D mesh", Topology::mesh2d(8, 8)),
        ("4x4 star-mesh c=4", Topology::star_mesh(4, 4, 4)),
        ("4x4x4 3D mesh", Topology::mesh3d(4, 4, 4)),
        ("4x4x2 ciliated c=2", Topology::ciliated_mesh3d(4, 4, 2, 2)),
    ];
    explore(&candidates64, params);

    println!("\n512-core stack candidates:");
    let candidates512 = [
        ("32x16 2D mesh", Topology::mesh2d(32, 16)),
        ("8x8 star-mesh c=8", Topology::star_mesh(8, 8, 8)),
        ("8x8x8 3D mesh", Topology::mesh3d(8, 8, 8)),
    ];
    explore(&candidates512, params);

    // Cross-validate the analytic winner with the DES.
    let topo = Topology::mesh3d(4, 4, 4);
    let model = AnalyticModel::new(&topo, params);
    let rate = 0.2;
    let analytic = model.mean_latency(rate).expect("below saturation");
    let des = simulate(
        &topo,
        &DesConfig {
            injection_rate: rate,
            measured_packets: 30_000,
            ..DesConfig::default()
        },
    );
    println!(
        "\nDES cross-check, 4x4x4 3D mesh @ {rate} flits/cycle/module:\n  analytic {analytic:.2} cycles vs DES {:.2} +/- {:.2} cycles",
        des.mean_latency,
        2.0 * des.stderr
    );
}

fn explore(candidates: &[(&str, Topology)], params: RouterParams) {
    for (name, topo) in candidates {
        let model = AnalyticModel::new(topo, params);
        println!(
            "  {name:20} zero-load {:5.1} cy, saturation {:5.2} fl/cy/mod, mean hops {:4.2}",
            model.zero_load_latency(),
            model.saturation_rate(),
            model.mean_hops()
        );
    }
}
