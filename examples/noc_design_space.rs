//! NoC design-space exploration for a chip stack (§IV).
//!
//! Compares candidate topologies for a 64-core and a 512-core stack with
//! the analytic queueing model, cross-validates against the discrete-
//! event simulator, and stresses the analytic winner with the synthetic
//! traffic patterns the uniform-only queueing model cannot describe —
//! the workflow ref \[14\] was built for, extended the way multichip
//! interconnect evaluations (e.g. arXiv:1709.07529) qualify a design.
//!
//! Run with: `cargo run --release --example noc_design_space`

use wireless_interconnect::noc::analytic::{AnalyticModel, RouterParams};
use wireless_interconnect::noc::des::traffic::{TrafficKind, TrafficPattern};
use wireless_interconnect::noc::des::{simulate, sweep, DesConfig, SweepConfig};
use wireless_interconnect::noc::topology::Topology;
use wireless_interconnect::sweep::exec::{fold, run, RunOptions};
use wireless_interconnect::sweep::spec::{cell_key, Axis, EvalSpec, SweepSpec};
use wireless_interconnect::sweep::store::{CellKey, ResultStore};
use wireless_interconnect::system::config::NocWorkloadConfig;

fn main() {
    let params = RouterParams::default();

    println!("64-core stack candidates:");
    let candidates64 = [
        ("8x8 2D mesh", Topology::mesh2d(8, 8)),
        ("4x4 star-mesh c=4", Topology::star_mesh(4, 4, 4)),
        ("4x4x4 3D mesh", Topology::mesh3d(4, 4, 4)),
        ("4x4x2 ciliated c=2", Topology::ciliated_mesh3d(4, 4, 2, 2)),
    ];
    explore(&candidates64, params);

    println!("\n512-core stack candidates:");
    let candidates512 = [
        ("32x16 2D mesh", Topology::mesh2d(32, 16)),
        ("8x8 star-mesh c=8", Topology::star_mesh(8, 8, 8)),
        ("8x8x8 3D mesh", Topology::mesh3d(8, 8, 8)),
    ];
    explore(&candidates512, params);

    // Cross-validate the analytic winner with the DES (the workload config
    // is the one `wi_core::SystemConfig` carries).
    let topo = Topology::mesh3d(4, 4, 4);
    let model = AnalyticModel::new(&topo, params);
    let workload = NocWorkloadConfig {
        injection_rate: 0.2,
        ..NocWorkloadConfig::paper_default()
    };
    let rate = workload.injection_rate;
    let analytic = model.mean_latency(rate).expect("below saturation");
    let des = simulate(
        &topo,
        &DesConfig {
            measured_packets: 30_000,
            ..workload.des_config(0xDE5)
        },
    );
    println!(
        "\nDES cross-check, 4x4x4 3D mesh @ {rate} flits/cycle/module:\n  analytic {analytic:.2} cycles vs DES {:.2} +/- {:.2} cycles",
        des.mean_latency,
        2.0 * des.stderr
    );

    // The analytic model only knows uniform traffic; replication sweeps
    // show how the winner behaves under adversarial patterns.
    println!(
        "\n4x4x4 3D mesh under synthetic traffic ({} replications/rate, mean ±2se cycles):",
        workload.replications
    );
    let rates = [0.1, 0.3, 0.5];
    print!("  {:12}", "pattern");
    for r in rates {
        print!("  λ={r:<12}");
    }
    println!("knee");
    for traffic in [
        TrafficKind::Uniform,
        TrafficKind::Hotspot {
            node: 0,
            fraction: 0.2,
        },
        TrafficKind::Transpose,
        TrafficKind::BitReversal,
        TrafficKind::NearestNeighbor,
    ] {
        let cfg = SweepConfig::new(
            rates.to_vec(),
            workload.replications,
            DesConfig {
                traffic,
                warmup_packets: 500,
                measured_packets: 4_000,
                max_events: 1_000_000,
                ..DesConfig::default()
            },
        );
        let result = sweep(&topo, &cfg);
        print!("  {:12}", traffic.name());
        for p in &result.points {
            if p.completed == 0 {
                print!("  {:14}", "saturated");
            } else {
                print!(
                    "  {:14}",
                    format!("{:.1} ±{:.1}", p.mean_latency, 2.0 * p.stderr)
                );
            }
        }
        match result.saturation_knee {
            Some(k) => println!("{k:.2}"),
            None => println!(">{:.2}", rates[rates.len() - 1]),
        }
    }
    println!("\nuniform tracks the analytic model; hotspot knees first (ejection");
    println!("port of the hot node), neighbor traffic rides the short 3D paths.");

    // Once a pattern has collapsed the dimension-order knee, oblivious
    // randomized routing is the standard remedy: O1TURN spreads minimal
    // paths over the six dimension orders, Valiant detours through random
    // intermediates. Saturation knees per policy on the winner — run as a
    // wi_sweep design-space sweep: traffic x routing axes over the
    // paper-default SystemConfig (whose stack IS the 4x4x4 mesh), each
    // cell a pure (config, seed, eval) function. With `--store <dir>`
    // the matrix is resumable: a killed run continues where it stopped
    // and a re-run recomputes nothing.
    println!("\n4x4x4 3D mesh saturation knees (flits/cycle/module) per routing policy:");
    let traffics = ["hotspot:0:0.2", "transpose", "bitrev"];
    let routings = ["dor", "o1turn", "valiant"];
    let spec = SweepSpec {
        name: "noc-design-space-knees".into(),
        base: "paper".into(),
        axes: vec![
            Axis {
                field: "traffic".into(),
                values: traffics.iter().map(|s| s.to_string()).collect(),
            },
            Axis {
                field: "routing".into(),
                values: routings.iter().map(|s| s.to_string()).collect(),
            },
        ],
        // DesConfig::default().seed — the seed the pre-sweep version of
        // this example used, so the knee matrix is unchanged.
        seeds: vec![0xDE5],
        eval: EvalSpec::NocKnee {
            rates: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            warmup_packets: 500,
            measured_packets: 4_000,
            max_events: 1_000_000,
        },
    };
    let mut store = match std::env::args().skip_while(|a| a != "--store").nth(1) {
        Some(dir) => ResultStore::open(std::path::Path::new(&dir)).expect("open --store dir"),
        None => ResultStore::in_memory(),
    };
    run(&spec, &mut store, &RunOptions::default()).expect("knee sweep");
    let cells = spec.expand().expect("valid spec");
    print!("  {:12}", "pattern");
    for r in routings {
        print!("  {r:<8}");
    }
    println!();
    for (row, traffic) in traffics.iter().enumerate() {
        print!("  {:12}", TrafficKind::parse(traffic).unwrap().name());
        for col in 0..routings.len() {
            let cell = &cells[row * routings.len() + col];
            let (config, seed, eval) = cell_key(cell, &spec.eval);
            let record = store
                .get(&CellKey { config, seed, eval })
                .expect("cell just ran");
            let knee = record
                .metrics
                .iter()
                .find(|(name, _)| name == "knee")
                .map(|(_, k)| *k);
            match knee {
                Some(k) => print!("  {k:<8.2}"),
                None => print!("  {:<8}", ">0.50"),
            }
        }
        println!();
    }
    println!("\nO1TURN recovers the transpose/bit-reversal collapse at no extra");
    println!("hops; Valiant pays detours but is insensitive to the pattern.");

    // `--fold` dumps the raw per-rate latencies behind the matrix, in
    // deterministic fold order (byte-identical at any thread count or
    // resume point).
    if std::env::args().any(|a| a == "--fold") {
        print!("\n{}", fold(&spec, &store).expect("fold"));
    }
}

fn explore(candidates: &[(&str, Topology)], params: RouterParams) {
    for (name, topo) in candidates {
        let model = AnalyticModel::new(topo, params);
        println!(
            "  {name:20} zero-load {:5.1} cy, saturation {:5.2} fl/cy/mod, mean hops {:4.2}",
            model.zero_load_latency(),
            model.saturation_rate(),
            model.mean_hops()
        );
    }
}
