//! Quickstart: evaluate the paper's reference system end to end.
//!
//! Builds the default multi-board box (4 boards at 50 mm, 3×3 chip stacks
//! of 64 cores, 232.5 GHz links with 1-bit receivers, LDPC-CC coding) and
//! prints the system report.
//!
//! Run with: `cargo run --release --example quickstart`

use wireless_interconnect::system::config::SystemConfig;
use wireless_interconnect::system::eval::evaluate;

fn main() {
    let mut cfg = SystemConfig::paper_default();
    cfg.link.tx_power_dbm = 10.0; // Fig. 4 mid-range operating point

    let report = evaluate(&cfg);

    println!("wireless interconnect system — paper reference configuration");
    println!("-------------------------------------------------------------");
    println!(
        "boards: {} at {:.0} mm spacing",
        cfg.boards,
        cfg.board_spacing_m * 1e3
    );
    println!(
        "stacks per board: {} ({} cores each) -> {} cores total",
        cfg.board.stacks(),
        cfg.stack.cores(),
        report.total_cores
    );
    println!();
    for link in &report.links {
        println!(
            "{:9} link: {:5.0} mm, pathloss {:5.1} dB, SNR {:5.1} dB, {:.2} bpcu -> {:6.1} Gbit/s",
            link.name,
            link.distance_m * 1e3,
            link.pathloss_db,
            link.snr_db,
            link.spectral_efficiency,
            link.rate_gbps
        );
    }
    println!();
    println!(
        "aggregate cross-board bandwidth: {:.0} Gbit/s (backplane offload)",
        report.aggregate_cross_board_gbps
    );
    println!(
        "intra-stack NoC: {:.1} cycles zero-load, saturates at {:.2} flits/cycle/module",
        report.noc_zero_load_cycles, report.noc_saturation_rate
    );
    println!(
        "coding: {:.0} information bits structural latency (W = {}, N = {})",
        report.coding_latency_bits, cfg.coding.window, cfg.coding.lifting
    );
    println!(
        "end-to-end one-way latency estimate: {:.1} ns",
        report.end_to_end_latency_ns
    );
}
