//! Board-of-boards: the paper's §I vision ("4–5 boards per litre...
//! wireless links instead of a backplane") built hierarchically from the
//! interconnect database.
//!
//! Three escalating views of the same model:
//!
//! 1. the paper-default box ([`SystemConfig::paper_default`]) as a
//!    hybrid wired+wireless interconnect — per-link-class census and
//!    analytic zero-load latency over the materialized route table,
//! 2. an express-route walk showing a wireless "long wire" beating the
//!    wired Manhattan distance across boards,
//! 3. a million-router expanded grid — the same database describing it
//!    in a few KiB, with closed-form corner-to-corner routes.
//!
//! Run with: `cargo run --release --example board_of_boards`

use wireless_interconnect::noc::analytic::{AnalyticModel, RouterParams};
use wireless_interconnect::noc::icdb::{ClassRouter, ExpandedGrid};
use wireless_interconnect::noc::routing::RoutingKind;
use wireless_interconnect::system::config::SystemConfig;

fn main() {
    // 1. The paper-default box as a hybrid interconnect: each board's
    //    stack grid is tiled into one wired mesh, boards chained along x
    //    by wireless express links with one radio site per stack row.
    let cfg = SystemConfig::paper_default();
    let hybrid = cfg.hybrid_boards();
    let [nx, ny, nz] = hybrid.board_dims();
    println!(
        "paper-default box: {} boards of {nx}x{ny}x{nz} routers ({} cores), {} radio sites/gap",
        hybrid.boards(),
        cfg.total_cores(),
        hybrid.radios().len(),
    );
    println!("\nper-class link census:");
    let classes = hybrid.db().link_classes();
    for (id, count) in hybrid.link_census() {
        let c = &classes[id];
        println!(
            "  {:24} span {:2}  {:?}/{:?}  x{count}",
            c.name, c.span, c.medium, c.placement
        );
    }

    let table = hybrid.route_table();
    let model = AnalyticModel::with_table(hybrid.topology(), RouterParams::default(), table);
    println!(
        "\nanalytic zero-load latency over the hybrid routes: {:.1} cycles",
        model.zero_load_latency()
    );

    // 2. One express route: far corner to far corner. The wired Manhattan
    //    distance spans every board; the wireless long wires collapse each
    //    board gap into a single hop.
    let topo = hybrid.topology();
    let src = topo.router_at([0, 0, 0]);
    let dst = topo.router_at([hybrid.boards() * nx - 1, ny - 1, nz - 1]);
    let mut route = Vec::new();
    hybrid.route_into(src, dst, &mut route);
    let manhattan = (hybrid.boards() * nx - 1) + (ny - 1) + (nz - 1);
    println!(
        "corner-to-corner: {} hops via {} express links (wired Manhattan {manhattan})",
        route.len(),
        hybrid.boards() - 1,
    );

    // 3. Scale: the same database family describing a million-router grid.
    //    Nothing per-router is stored; routes come from closed-form link
    //    ids.
    let grid = ExpandedGrid::mesh3d(100, 100, 100);
    let router = ClassRouter::new(grid.clone(), RoutingKind::DimensionOrder);
    let mut out = Vec::new();
    router.route_routers_into(0, grid.num_routers() - 1, 0, &mut out);
    println!(
        "\n100x100x100 expanded grid: {} routers, {} links, {} bytes resident",
        grid.num_routers(),
        grid.num_links(),
        router.mem_bytes(),
    );
    println!(
        "corner-to-corner route: {} closed-form link ids, no table built",
        out.len()
    );
}
