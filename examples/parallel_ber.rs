//! Parallel Monte-Carlo BER: thread fan-out with bit-identical results.
//!
//! Runs the same BER estimate serially and with several worker-thread
//! counts, demonstrating the determinism contract of `wi_ldpc::ber`:
//! every frame derives its own RNG and Gaussian sampler from the master
//! seed, and the early-stopping rule folds over frames in order, so the
//! estimate is the same no matter how the frames were scheduled.
//!
//! Run with: `cargo run --release --example parallel_ber`

use std::time::Instant;
use wireless_interconnect::ldpc::ber::{simulate_ber_with_threads, BerSimOptions, BlockBerTarget};
use wireless_interconnect::ldpc::decoder::{BpConfig, CheckRule};
use wireless_interconnect::ldpc::LdpcCode;

fn main() {
    let code = LdpcCode::paper_block(100, 7); // the paper's n = 200 block code
    let config = BpConfig {
        check_rule: CheckRule::min_sum(),
        ..BpConfig::default()
    };
    let target = BlockBerTarget::new(&code, config, 0.5);
    let opts = BerSimOptions {
        target_errors: 200,
        max_frames: 400,
        min_frames: 50,
        seed: 0xF10,
    };
    let ebn0_db = 2.5;

    let t0 = Instant::now();
    let serial = simulate_ber_with_threads(&target, ebn0_db, &opts, 1);
    let t_serial = t0.elapsed();
    println!(
        "serial      : BER {:.3e}  ({} errors / {} frames)  in {:.1} ms",
        serial.ber,
        serial.bit_errors,
        serial.frames,
        t_serial.as_secs_f64() * 1e3
    );

    for threads in [2usize, 4, 8] {
        let t0 = Instant::now();
        let par = simulate_ber_with_threads(&target, ebn0_db, &opts, threads);
        let dt = t0.elapsed();
        let same = if par == serial {
            "bit-identical"
        } else {
            "MISMATCH!"
        };
        println!(
            "{threads:2} thread(s) : BER {:.3e}  ({} errors / {} frames)  in {:.1} ms  [{same}]",
            par.ber,
            par.bit_errors,
            par.frames,
            dt.as_secs_f64() * 1e3
        );
        assert_eq!(par, serial, "parallel run diverged from serial");
    }
    println!(
        "\n{} hardware threads available on this host; speedup tracks the",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!("core count because frames are independent and workspaces are per-worker.");
}
