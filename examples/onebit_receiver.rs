//! Designing a 1-bit oversampled receiver (§III).
//!
//! Shows why plain 4-ASK cannot be sign-detected, designs an ISI filter
//! that makes it uniquely detectable, and compares achievable information
//! rates across SNR.
//!
//! Run with: `cargo run --release --example onebit_receiver`

use wireless_interconnect::quantrx::design::{design_suboptimal, DesignOptions};
use wireless_interconnect::quantrx::filter::IsiFilter;
use wireless_interconnect::quantrx::info_rate::{
    sequence_information_rate, snr_db_to_sigma, symbolwise_information_rate, SequenceRateOptions,
};
use wireless_interconnect::quantrx::modulation::AskModulation;
use wireless_interconnect::quantrx::presets;
use wireless_interconnect::quantrx::trellis::ChannelTrellis;
use wireless_interconnect::quantrx::unique::{detection_margin, unique_detection};

fn main() {
    let modu = AskModulation::four_ask();

    // 1. A rectangular pulse cannot carry 4-ASK through a 1-bit sampler.
    let rect = ChannelTrellis::new(&modu, &IsiFilter::rectangular(5));
    println!(
        "rectangular pulse uniquely detectable: {}",
        unique_detection(&rect).is_unique()
    );

    // 2. Design ISI that encodes amplitude in sign-transition positions.
    let design = design_suboptimal(
        &modu,
        &DesignOptions {
            max_evals: 600,
            ..DesignOptions::default()
        },
    );
    let designed = ChannelTrellis::new(&modu, &design.filter);
    println!(
        "designed filter uniquely detectable: {} (margin {:.3})",
        unique_detection(&designed).is_unique(),
        detection_margin(&designed)
    );

    // 3. Information rates with the shipped sequence-optimal preset.
    let seq_trellis = ChannelTrellis::new(&modu, &presets::sequence_filter());
    let mc = SequenceRateOptions {
        num_symbols: 30_000,
        seed: 1,
    };
    println!("\nSNR/dB  sequence  symbolwise  (bits per channel use)");
    for snr in [0.0, 10.0, 20.0, 25.0, 30.0] {
        let sigma = snr_db_to_sigma(snr);
        println!(
            "  {snr:4.0}    {:.3}      {:.3}",
            sequence_information_rate(&seq_trellis, sigma, mc),
            symbolwise_information_rate(&seq_trellis, sigma)
        );
    }
    println!("\nat 25 dB the designed-ISI sequence receiver carries ~2 bpcu — the");
    println!("spectral efficiency the paper's 100 Gbit/s (dual-pol, 25 GHz) link needs.");
}
