//! Board-to-board link design walkthrough (§II).
//!
//! Sounds a custom two-board geometry with the synthetic VNA, fits the
//! pathloss exponent, checks the reflection margin, and derives the
//! transmit power needed for the paper's 100 Gbit/s target.
//!
//! Run with: `cargo run --release --example board_to_board`

use wi_num::window::WindowKind;
use wireless_interconnect::channel::geometry::BoardLink;
use wireless_interconnect::channel::measurement::copper_board_sweep;
use wireless_interconnect::channel::rays::TwoBoardScene;
use wireless_interconnect::channel::vna::SyntheticVna;
use wireless_interconnect::linkbudget::budget::LinkBudget;
use wireless_interconnect::linkbudget::datarate::{
    required_snr_db_for_rate, Polarization, PAPER_BANDWIDTH_HZ, PAPER_TARGET_RATE_BPS,
};

fn main() {
    let vna = SyntheticVna::paper_default();

    // 1. Sound the channel across diagonal links at 50 mm board spacing.
    let distances: Vec<f64> = (4..=30).map(|i| 0.01 * i as f64).collect();
    let sweep = copper_board_sweep(&vna, &distances);
    println!(
        "fitted pathloss: n = {:.4}, PL(1 m) = {:.1} dB (R^2 = {:.4})",
        sweep.fit.exponent, sweep.fit.loss_at_1m_db, sweep.fit.r_squared
    );

    // 2. Check the multipath margin on the worst diagonal.
    let link = BoardLink::with_link_distance(0.05, 0.01, 0.300);
    let ir = vna
        .measure(&TwoBoardScene::copper_boards(link).trace())
        .impulse_response(WindowKind::Hann);
    let echo = ir
        .strongest_echo_rel_db(80e-12)
        .unwrap_or(f64::NEG_INFINITY);
    println!("worst-link strongest reflection: {echo:.1} dB below LOS (static, flat channel ok)");

    // 3. Link budget: transmit power for 100 Gbit/s (Shannon bound and a
    //    3 dB implementation margin on top).
    let model = sweep.fit.into_model();
    let snr_needed = required_snr_db_for_rate(
        PAPER_BANDWIDTH_HZ,
        PAPER_TARGET_RATE_BPS,
        Polarization::Dual,
    );
    println!("\nSNR needed for 100 Gbit/s dual-pol in 25 GHz: {snr_needed:.2} dB (Shannon)");
    for d in [0.1, 0.2, 0.3] {
        let budget = LinkBudget::from_model(&model, d);
        let p = budget.required_tx_power_dbm(snr_needed + 3.0);
        println!(
            "  {:>3.0} mm link: pathloss {:5.1} dB -> P_TX = {:6.2} dBm (with 3 dB margin)",
            d * 1e3,
            budget.pathloss_db,
            p
        );
    }
}
