//! Latency/performance trade-off of LDPC convolutional codes (§V).
//!
//! For a link latency budget, sweeps the decoder window size (the knob the
//! paper highlights: adjustable at the decoder without changing the
//! encoder) and reports structural latency and simulated BER at a fixed
//! Eb/N0.
//!
//! Run with: `cargo run --release --example coding_tradeoff`

use wireless_interconnect::ldpc::ber::{simulate_ber, BerSimOptions, CoupledBerTarget};
use wireless_interconnect::ldpc::window::{CoupledCode, WindowDecoder};

fn main() {
    let lifting = 25;
    let code = CoupledCode::paper_cc(lifting, 20, 42);
    let ebn0_db = 3.5;
    let opts = BerSimOptions {
        target_errors: 50,
        max_frames: 60,
        min_frames: 20,
        seed: 7,
    };

    println!("(4,8)-regular LDPC-CC, N = {lifting}, L = 20, Eb/N0 = {ebn0_db} dB");
    println!("window  latency/info bits  BER");
    for w in 3..=8 {
        let decoder = WindowDecoder::new(w, 50);
        let est = simulate_ber(&CoupledBerTarget::new(&code, decoder), ebn0_db, &opts);
        println!(
            "  W={w}        {:6.0}        {:.2e}  ({} frames)",
            code.window_latency_bits(w),
            est.ber,
            est.frames
        );
    }
    println!("\nthe encoder never changes: a latency-constrained application can");
    println!("shrink W (lower latency, higher BER) or grow it (the reverse) at runtime.");

    // Latency budget example: pick the largest W within 150 info bits.
    let budget_bits = 150.0;
    let best_w = (3..=8)
        .filter(|&w| code.window_latency_bits(w) <= budget_bits)
        .max()
        .expect("some window fits");
    println!(
        "\nfor a {budget_bits:.0}-info-bit structural latency budget, choose W = {best_w} ({:.0} bits).",
        code.window_latency_bits(best_w)
    );
}
